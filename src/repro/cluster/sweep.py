"""Cluster experiment cells: demo scenarios and policy sweeps.

The cell workers live at module level so they pickle under the spawn
start method, exactly like :mod:`repro.bench.parallel`'s Table-3 cells:
``python -m repro cluster sweep --jobs N`` fans cells out to worker
processes and produces byte-identical output to a serial run, because
every cell is a pure function of ``(policy, hosts, tenants, seed)`` and
results are assembled in task order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import map_cells

__all__ = [
    "standard_tenants",
    "run_demo",
    "cluster_cell",
    "run_sweep",
    "SWEEP_POLICIES",
    "SWEEP_HOST_COUNTS",
]

SWEEP_POLICIES: Tuple[str, ...] = ("bin-pack", "spread", "load-balance")
SWEEP_HOST_COUNTS: Tuple[int, ...] = (2, 4)

def standard_tenants(count: int) -> List:
    """A deterministic tenant fleet of ``count`` mixed-I/O tenants.
    The mix formula lives in :mod:`repro.scenarios.generator` (the one
    generator behind the fuzzer, the audit matrix and these sweeps);
    this canonical fleet is its unrotated draw."""
    from repro.scenarios.generator import mixed_tenant_specs

    return mixed_tenant_specs(count)


#: ``run_demo(slo=True)`` sampling program: tick cadence and count.
SLO_DEMO_SAMPLE_S = 2e-5
SLO_DEMO_TICKS = 150


def run_demo(
    seed: int = 0,
    num_hosts: int = 4,
    num_tenants: int = 6,
    policy: str = "bin-pack",
    guest_hv: str = "kvm",
    arch: str = "x86",
    fault_plan=None,
    audit: bool = False,
    slo: bool = False,
) -> Dict:
    """The canonical cluster scenario: boot, place a mixed fleet, run a
    cross-host stream, then evacuate host0 — the DVH tenants move, the
    hardware-coupled ones stay.  Returns the cluster summary dict.
    ``audit=True`` arms the runtime invariant auditor and adds an
    ``"audit"`` section to the summary (the simulated bytes — trace,
    digest — are identical either way).  ``slo=True`` samples every
    placed tenant's request latency on a fixed cadence during the run
    (see :mod:`repro.cluster.telemetry`) and adds a per-tenant
    percentile table — the evacuation's load shift lands in the tails."""
    from repro.core.migration import MigrationError, MigrationNotSupported
    from repro.cluster import Cluster

    cluster = Cluster(
        num_hosts=num_hosts,
        seed=seed,
        policy=policy,
        guest_hv=guest_hv,
        arch=arch,
        fault_plan=fault_plan,
    )
    auditor = cluster.enable_audit() if audit else None
    for spec in standard_tenants(num_tenants):
        cluster.place(spec)
    if slo:
        from repro.cluster.telemetry import sample_host

        def telemetry():
            gap = max(1, cluster.sim.cycles(SLO_DEMO_SAMPLE_S))
            for tick in range(1, SLO_DEMO_TICKS + 1):
                yield gap
                for host in cluster.hosts:
                    if host.tenants:
                        sample_host(cluster.fabric.metrics, host, tick)

        cluster.sim.spawn(telemetry(), "telemetry")
    if num_hosts >= 2:
        cluster.stream("host1", f"host{num_hosts - 1}", 8 << 20)
        try:
            cluster.orchestrator.evacuate("host0")
        except (MigrationError, MigrationNotSupported):
            pass  # recorded in the trace; the demo reports what happened
        cluster.sim.run()
    summary = cluster.summary()
    summary["trace"] = cluster.events
    if slo:
        from repro.cluster.telemetry import percentile_table

        tenants = cluster.tenants()
        summary["tenant_percentiles"] = percentile_table(
            cluster.fabric.metrics,
            lambda series: (
                tenants[series].spec.io_model if series in tenants else ""
            ),
        )
    if auditor is not None:
        report = auditor.finish()
        summary["audit"] = {
            "ok": report.ok,
            "checks_run": report.checks_run,
            "violations": [str(v) for v in report.violations],
        }
    return summary


def cluster_cell(task: Tuple[str, int, int, int]) -> Dict:
    """One sweep cell: (policy, hosts, tenants, seed) -> placement and
    migration figures.  Pure; safe to run in a worker process."""
    policy, num_hosts, num_tenants, seed = task
    from repro.core.migration import MigrationError, MigrationNotSupported
    from repro.cluster import Cluster

    cluster = Cluster(num_hosts=num_hosts, seed=seed, policy=policy)
    for spec in standard_tenants(num_tenants):
        cluster.place(spec)

    # Migrate the first migratable tenant to the emptiest other host.
    migrated: Optional[Dict] = None
    for name, tenant in sorted(cluster.tenants().items()):
        if tenant.spec.io_model == "passthrough":
            continue
        src = cluster.host_of(name)
        others = [h for h in cluster.hosts if h.name != src.name]
        if not others:
            break
        dst = min(others, key=lambda h: (h.mem_committed, h.name))
        try:
            record = cluster.migrate(name, dst.name)
        except (MigrationError, MigrationNotSupported):
            break
        migrated = {
            "tenant": name,
            "downtime_ms": round(record.result.downtime_s * 1e3, 3),
            "rounds": record.result.rounds,
            "bytes": record.result.bytes_transferred,
        }
        break

    spread = sorted(len(h.tenants) for h in cluster.hosts)
    return {
        "policy": policy,
        "hosts": num_hosts,
        "tenants": num_tenants,
        "tenants_per_host": spread,
        "max_load": max(h.cycle_load for h in cluster.hosts),
        "migration": migrated,
        "fabric_migration_bytes": cluster.fabric.metrics.cross_host_bytes(
            "migration"
        ),
        "digest": cluster.digest(),
    }


def run_sweep(
    seed: int = 0,
    policies: Sequence[str] = SWEEP_POLICIES,
    host_counts: Sequence[int] = SWEEP_HOST_COUNTS,
    num_tenants: int = 6,
    jobs: Optional[int] = None,
) -> List[Dict]:
    """Sweep placement policies across cluster sizes.  ``jobs`` fans the
    independent cells out to processes; output order (and bytes) never
    depends on it."""
    tasks = [
        (policy, hosts, num_tenants, seed)
        for policy in policies
        for hosts in host_counts
    ]
    return map_cells(cluster_cell, tasks, jobs)
