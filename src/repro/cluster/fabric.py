"""The datacenter fabric: a top-of-rack switch connecting cluster hosts.

One :class:`Fabric` models a ToR switch.  Every host attaches through a
:class:`FabricPort` — a full-duplex :class:`~repro.hw.devices.nic.Wire`
(40 GbE uplink by default, see ``CostModel.fabric_bps``) — and frames
hop host -> uplink -> switching core -> downlink -> host, store-and-
forward, with each wire serializing independently.  Everything runs on
the cluster's single shared simulator, so fabric contention (two
migrations squeezing through one downlink) is emergent and
deterministic.

Cross-host traffic is metered in the cluster-level
:class:`~repro.metrics.Metrics` ``cross_host`` table, keyed by
``(src_host, dst_host, kind)`` — the table stays empty on single-machine
runs, keeping the cluster layer zero-cost when unused.

Fault classes (``fabric_partition``, ``fabric_host_loss``,
``fabric_degrade``) are consulted lazily through an attached
:class:`~repro.faults.FaultInjector`, mirroring how the migration wire
consults migration-fault classes: the cluster attaches the injector to
the Fabric itself (it exposes ``sim``/``metrics`` like a Machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro.hw.devices.nic import Packet, Wire
from repro.metrics import Metrics

__all__ = ["FabricFrame", "FabricPort", "Fabric", "UndeliverableError"]


class UndeliverableError(RuntimeError):
    """A frame could not be delivered: unknown destination, or the
    destination host is lost while the frame is in flight."""


@dataclass(slots=True)
class FabricFrame:
    """One message on the fabric (a jumbo frame / GSO burst)."""

    src: str
    dst: str
    #: Traffic class for metering: "migration", "net", or "control".
    kind: str
    size: int
    payload: Any = None
    #: Optional completion event: triggered with the frame on delivery,
    #: or with ``None`` if the frame is lost mid-flight (host loss).
    notify: Any = None


class FabricPort:
    """One host's attachment point: a full-duplex uplink wire.

    The "out" direction carries host -> switch traffic, "in" carries
    switch -> host.  ``receiver`` is the host-side consumer for
    delivered frames (installed by the cluster host; frames with no
    receiver are dropped like unconsumed NIC packets).
    """

    __slots__ = ("fabric", "host", "wire", "receiver", "frames")

    def __init__(self, fabric: "Fabric", host: str, wire: Wire) -> None:
        self.fabric = fabric
        self.host = host
        self.wire = wire
        self.receiver: Optional[Callable[[FabricFrame], None]] = None
        self.frames = {"tx": 0, "rx": 0}

    @property
    def bytes_carried(self) -> Dict[str, int]:
        return self.wire.bytes_carried


class Fabric:
    """A deterministic top-of-rack switch over the shared simulator."""

    def __init__(self, sim, costs, name: str = "tor0") -> None:
        self.sim = sim
        self.costs = costs
        self.name = name
        #: Cluster-level metrics (the ``cross_host`` table lives here).
        self.metrics = Metrics()
        self.ports: Dict[str, FabricPort] = {}
        #: Attached FaultInjector (or None): consulted for partition /
        #: host-loss / bandwidth-collapse windows.
        self.faults = None
        #: Hosts administratively dark (rebooting for a kernel upgrade):
        #: their links behave exactly like a host-loss fault window.
        #: Empty on plain clusters — zero behavior change.
        self.admin_down: set = set()
        #: Frames dropped because the destination was unknown or lost.
        self.undeliverable = 0
        # Fast-forward: the fabric's counters (cross_host bytes, frame
        # counts) join every epoch fingerprint on the shared simulator,
        # so a skipped pre-copy cadence scales them exactly.
        sim.ff.register_metrics(self.metrics)
        sim.ff.add_veto(self._ff_veto)

    def _ff_veto(self):
        # Fabric fault windows (partitions, host loss, degrade) open and
        # close on absolute schedules a macro-event could jump past.
        return "fabric_faults" if self.faults is not None else None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, host: str) -> FabricPort:
        """Attach ``host`` with a fresh uplink; returns its port."""
        if host in self.ports:
            raise ValueError(f"{host} already attached to {self.name}")
        wire = Wire(self.sim, self.costs.fabric_bps, self.costs.fabric_latency)
        port = FabricPort(self, host, wire)
        self.ports[host] = port
        return port

    def port(self, host: str) -> FabricPort:
        try:
            return self.ports[host]
        except KeyError:
            raise UndeliverableError(f"{host} is not attached to {self.name}")

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    def link_blocked(self, host: str) -> bool:
        """Is traffic through ``host``'s port currently impossible?
        True inside a partition window for that host's link, while the
        host itself is lost, or while an operator holds it down."""
        if host in self.admin_down:
            return True
        if self.faults is None:
            return False
        return self.faults.fabric_link_down(host) or self.faults.fabric_host_lost(
            host
        )

    def path_blocked(self, src: str, dst: str) -> bool:
        """A frame src -> dst needs both ports usable."""
        return self.link_blocked(src) or self.link_blocked(dst)

    def bandwidth_factor(self) -> float:
        if self.faults is None:
            return 1.0
        return max(0.01, self.faults.fabric_bandwidth_factor())

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, frame: FabricFrame) -> None:
        """Inject ``frame`` at the source port; it serializes on the
        uplink, crosses the switching core, serializes on the downlink,
        and lands in the destination port's receiver.

        Callers that need completion notification send a frame whose
        delivery triggers an event (see :meth:`transfer`); `send` itself
        is fire-and-forget, like a NIC tx.
        """
        src_port = self.port(frame.src)
        dst_port = self.port(frame.dst)  # fail fast on unknown dst
        factor = self.bandwidth_factor()
        # Degraded links stretch serialization: the same frame occupies
        # the (rate-renegotiated) wire longer, expressed as extra
        # on-wire bytes so Wire's busy-until bookkeeping stays exact.
        on_wire = frame.size if factor >= 1.0 else int(frame.size / factor)
        src_port.frames["tx"] += 1
        pkt = Packet(
            flow=f"{frame.src}->{frame.dst}",
            size=frame.size,
            payload=frame,
            inbound=False,  # host -> switch uses the uplink's out side
        )
        src_port.wire.transmit(
            pkt, lambda p: self._at_switch(p, dst_port, on_wire), wire_size=on_wire
        )

    def _at_switch(self, pkt: Packet, dst_port: FabricPort, on_wire: int) -> None:
        frame: FabricFrame = pkt.payload
        # Store-and-forward: the core adds a fixed latency, then the
        # frame serializes again on the destination downlink.
        def forward() -> None:
            down = Packet(
                flow=pkt.flow, size=frame.size, payload=frame, inbound=True
            )
            dst_port.wire.transmit(down, self._deliver, wire_size=on_wire)

        self.sim.call_after(self.costs.fabric_switch_latency, forward)

    def _deliver(self, pkt: Packet) -> None:
        frame: FabricFrame = pkt.payload
        if self.link_blocked(frame.dst):
            # The destination vanished while the frame was in flight.
            self.undeliverable += 1
            self.metrics.count("fabric_undeliverable")
            if frame.notify is not None:
                frame.notify.trigger(None)
            return
        port = self.ports.get(frame.dst)
        self.metrics.record_cross_host(frame.src, frame.dst, frame.kind, frame.size)
        self.metrics.count("fabric_frames")
        if port is not None:
            port.frames["rx"] += 1
            if port.receiver is not None:
                port.receiver(frame)
        if frame.notify is not None:
            frame.notify.trigger(frame)

    # ------------------------------------------------------------------
    # Blocking transfer (for generator processes)
    # ------------------------------------------------------------------
    def transfer(
        self, src: str, dst: str, size: int, kind: str, payload: Any = None
    ) -> Generator:
        """Send one frame and wait for its delivery; a process-protocol
        sub-routine (``yield from fabric.transfer(...)``).  Raises
        :class:`UndeliverableError` if either port is blocked at send
        time — callers own retry policy."""
        if self.path_blocked(src, dst):
            raise UndeliverableError(f"path {src} -> {dst} is partitioned")
        done = self.sim.event(f"fabric:{src}->{dst}")
        frame = FabricFrame(
            src=src, dst=dst, kind=kind, size=size, payload=payload, notify=done
        )
        self.send(frame)
        result = yield done
        if result is None:
            raise UndeliverableError(f"frame {src} -> {dst} lost in flight")
        return result

    def frame_cycles(
        self, size: int, src: Optional[str] = None, dst: Optional[str] = None
    ) -> int:
        """Uncontended cycles for one frame end to end (two
        serializations + propagation + switch core).  ``src``/``dst``
        are accepted for topology-aware subclasses (a spine-leaf fabric
        prices cross-rack paths differently); a single ToR ignores them.
        """
        serialization = int(size * 8 / self.costs.fabric_bps * self.sim.freq_hz)
        return (
            2 * serialization
            + 2 * self.costs.fabric_latency
            + self.costs.fabric_switch_latency
        )

    # ------------------------------------------------------------------
    # Fast-forward compensation
    # ------------------------------------------------------------------
    def ff_precopy_compensate(
        self, src: str, dst: str, n: int, chunk_bytes: int
    ) -> None:
        """A fast-forward macro-event just skipped ``n`` full pre-copy
        chunks src -> dst.  The fabric's :class:`Metrics` were scaled by
        the skip machinery; the plain per-port / per-wire tallies along
        the path are the fabric's to compensate here.  Subclasses with
        more tiers (spine trunks) extend this."""
        src_port = self.port(src)
        dst_port = self.port(dst)
        src_port.frames["tx"] += n
        dst_port.frames["rx"] += n
        src_port.wire.bytes_carried["out"] += n * chunk_bytes
        dst_port.wire.bytes_carried["in"] += n * chunk_bytes

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Fabric-wide counters for reports."""
        return {
            "hosts": len(self.ports),
            "frames": int(self.metrics.events.get("fabric_frames", 0)),
            "bytes": self.metrics.cross_host_bytes(),
            "migration_bytes": self.metrics.cross_host_bytes("migration"),
            "net_bytes": self.metrics.cross_host_bytes("net"),
            "undeliverable": self.undeliverable,
        }
