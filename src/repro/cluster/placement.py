"""Pluggable tenant-placement policies.

A policy picks the host a new tenant lands on.  All policies are pure
functions of the cluster's current bookkeeping (no randomness) with
deterministic name-ordered tie-breaks, so placement is reproducible from
the admission sequence alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.cluster.host import ClusterHost, TenantSpec

__all__ = [
    "PlacementError",
    "PlacementPolicy",
    "BinPackPolicy",
    "SpreadPolicy",
    "LoadBalancePolicy",
    "POLICIES",
    "make_policy",
]


class PlacementError(RuntimeError):
    """No host can take the tenant."""


class PlacementPolicy:
    """Base class: rank the feasible hosts, pick the best."""

    #: Registry key (subclasses set it).
    name = "base"

    def choose(
        self, hosts: Sequence[ClusterHost], spec: TenantSpec
    ) -> ClusterHost:
        feasible = [h for h in hosts if h.fits(spec)]
        if not feasible:
            raise PlacementError(
                f"no host fits {spec.name} ({spec.memory_gb} GB)"
            )
        # Sort key first, host name second: ties always break the same
        # way regardless of dict/list ordering upstream.
        return min(feasible, key=lambda h: (self.key(h, spec), h.name))

    def key(self, host: ClusterHost, spec: TenantSpec):
        raise NotImplementedError


class BinPackPolicy(PlacementPolicy):
    """Fill the fullest feasible host first (consolidation: frees whole
    hosts for power-down or maintenance)."""

    name = "bin-pack"

    def key(self, host: ClusterHost, spec: TenantSpec):
        return -host.mem_committed


class SpreadPolicy(PlacementPolicy):
    """Fewest tenants first (blast-radius control: a host loss takes out
    as few tenants as possible)."""

    name = "spread"

    def key(self, host: ClusterHost, spec: TenantSpec):
        return len(host.tenants)


class LoadBalancePolicy(PlacementPolicy):
    """Lowest committed cycle load first (hot-spot avoidance)."""

    name = "load-balance"

    def key(self, host: ClusterHost, spec: TenantSpec):
        return host.cycle_load


POLICIES: Dict[str, Type[PlacementPolicy]] = {
    cls.name: cls
    for cls in (BinPackPolicy, SpreadPolicy, LoadBalancePolicy)
}


def make_policy(name: str) -> PlacementPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        )
