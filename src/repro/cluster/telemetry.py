"""Per-tenant request-latency telemetry at fleet scale.

Cluster and datacenter tenants do not run full workload engines — a
200-host fleet with per-request simulation would defeat the quiescent
host design.  Instead the control plane *samples* each tenant's
request latency on a fixed cadence through one deterministic model,
and records the samples into the fabric's
:class:`~repro.metrics.Metrics` latency tables (the same integer
histogram spine the workload engines feed, see
:mod:`repro.metrics.hist`).

The model is where the paper's story meets fleet dynamics:

* the **io-model base cost** orders virtio > vp (DVH virtual
  passthrough) > passthrough — the Table-3 per-operation gap;
* **noisy neighbours**: contention grows quadratically as the host's
  admitted cycle load approaches its capacity, so a hot host drags
  every tenant's tail;
* **migration brownout**: a tenant being live-migrated pays a large
  multiplier (dirty-page tracking + switchover stalls);
* **fabric degradation**: an active fabric fault window inflates
  everyone's latency on the affected fleet.

Every term is integer arithmetic on integers, and the per-sample
jitter is a pure hash of (tenant, tick) — no RNG stream, no float
rounding — so the histograms are byte-identical across fast-forward
modes, ``--jobs`` fan-out, and re-runs.
"""

from __future__ import annotations

from zlib import crc32

from repro.cluster.host import TENANT_PASSTHROUGH, TENANT_VIRTIO, TENANT_VP

__all__ = [
    "BASE_CYCLES",
    "BROWNOUT_MULT",
    "DEGRADED_MULT",
    "tenant_request_cycles",
    "sample_host",
    "percentile_table",
]

#: Baseline request latency (cycles) per io model on an idle host.
#: The ordering is the paper's: virtio pays exit multiplication, DVH
#: virtual passthrough cuts most of it, physical passthrough is the
#: floor (but pins the host, §3.6).
BASE_CYCLES = {
    TENANT_VIRTIO: 46_000,
    TENANT_VP: 15_000,
    TENANT_PASSTHROUGH: 9_000,
}

#: Latency multiplier while the tenant is being live-migrated.
BROWNOUT_MULT = 8
#: Latency multiplier while a fabric fault window is active.
DEGRADED_MULT = 4


def tenant_request_cycles(
    io_model: str,
    name: str,
    tick: int,
    load: int,
    capacity: int,
    migrating: bool = False,
    degraded: bool = False,
) -> int:
    """One sampled request latency, in cycles (exact integer).

    ``load``/``capacity`` are the host's admitted cycle load and its
    admission ceiling; contention triples the base cost as the host
    fills (quadratic in utilization, integer-exact).
    """
    base = BASE_CYCLES[io_model]
    lat = base
    if capacity > 0 and load > 0:
        lat += 3 * base * load * load // (capacity * capacity)
    if migrating:
        lat *= BROWNOUT_MULT
    if degraded:
        lat *= DEGRADED_MULT
    # Deterministic per-sample jitter (up to ~+6%): a pure hash of the
    # (tenant, tick) pair, so it never consumes RNG state and never
    # depends on sampling order.
    mix = crc32(f"{name}:{tick}".encode())
    return lat + lat * (mix & 0xFF) // 4096


def sample_host(
    metrics,
    host,
    tick: int,
    migrating=(),
    degraded: bool = False,
) -> int:
    """Sample every tenant on ``host`` once into ``metrics`` (one
    latency table series per tenant).  Returns the sample count.
    Tenants are visited in sorted-name order so the recording order is
    a pure function of fleet state."""
    load = host.cycle_load
    capacity = host.load_capacity
    n = 0
    for name in sorted(host.tenants):
        tenant = host.tenants[name]
        metrics.record_latency(
            name,
            tenant_request_cycles(
                tenant.spec.io_model,
                name,
                tick,
                load,
                capacity,
                migrating=name in migrating,
                degraded=degraded,
            ),
        )
        n += 1
    return n


def percentile_table(metrics, io_model_of, objective_of=None):
    """Render the cumulative latency tables as the per-tenant
    cross_host-style percentile table the CLI prints.

    ``io_model_of(series)`` maps a series name to its io model (or "");
    ``objective_of(io_model)``, when given, maps it to the SLO objective
    in cycles and adds ``objective_cycles`` / ``violations`` columns.
    Shared by the dc control plane and the cluster demo so both render
    identical row shapes from identical bytes."""
    out = {}
    for series in metrics.latency_series():
        hist = metrics.latency_histogram(series)
        if not hist.total:
            continue
        io_model = io_model_of(series)
        row = {
            "io_model": io_model,
            "samples": hist.total,
            "mean_cycles": hist.sum // hist.total,
            "p50_cycles": hist.percentile(50.0),
            "p99_cycles": hist.percentile(99.0),
            "p999_cycles": hist.percentile(99.9),
        }
        if io_model and objective_of is not None:
            objective = objective_of(io_model)
            row["objective_cycles"] = objective
            row["violations"] = hist.count_above(objective)
        out[series] = row
    return out
