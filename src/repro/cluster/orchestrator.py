"""Cross-host live migration over the datacenter fabric.

:class:`FabricChannel` adapts the fabric to the transport duck-type
:class:`~repro.core.migration.LiveMigration` accepts (``transfer`` /
``transfer_cycles`` / ``retries``): pre-copy bytes are chunked into
fabric frames that serialize on the real source uplink and destination
downlink, so dirty-page traffic consumes fabric bandwidth other flows
see — and is metered in the cluster ``cross_host`` table.

:class:`Orchestrator` drives whole migrations: it spawns the tenant's
dirtying workload next to the pre-copy process, enforces the downtime
limit, retries a migration that dies to a fabric partition with
exponential backoff, and re-homes the tenant's bookkeeping on success.

The DVH asymmetry (§3.6) needs no code here: a virtual-passthrough
tenant's device state travels through the PCI migration capability,
while a physical-passthrough tenant's VM is ``hardware_coupled`` and
:class:`~repro.core.migration.LiveMigration` refuses it with
:class:`~repro.hv.passthrough.MigrationNotSupported` before a single
byte moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cluster.fabric import Fabric, UndeliverableError
from repro.cluster.placement import PlacementError
from repro.core.migration import (
    LiveMigration,
    MigrationError,
    MigrationNotSupported,
    MigrationResult,
)

__all__ = ["FabricChannel", "Orchestrator", "MigrationRecord"]

#: Pre-copy traffic is moved in chunks of this size: large enough to
#: amortize per-frame switch latency, small enough that a partition is
#: noticed mid-stream rather than after gigabytes.
CHUNK_BYTES = 256 * 1024


class FabricChannel:
    """One migration's transport between two hosts on a fabric."""

    def __init__(
        self,
        fabric: Fabric,
        src: str,
        dst: str,
        max_retries: int = 6,
        retry_backoff_cycles: int = 400_000,
        chunk_bytes: int = CHUNK_BYTES,
    ) -> None:
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.max_retries = max_retries
        self.retry_backoff_cycles = retry_backoff_cycles
        self.chunk_bytes = chunk_bytes
        #: Chunk sends repeated after fabric faults (LiveMigration folds
        #: this into its MigrationResult.retries).
        self.retries = 0

    def transfer_cycles(self, nbytes: int) -> int:
        """Uncontended end-to-end estimate (used for the downtime-limit
        projection): full chunks plus the remainder, at the current
        degraded bandwidth."""
        factor = self.fabric.bandwidth_factor()
        effective = nbytes if factor >= 1.0 else int(nbytes / factor)
        full, rest = divmod(effective, self.chunk_bytes)
        cycles = full * self.fabric.frame_cycles(self.chunk_bytes, self.src, self.dst)
        if rest:
            cycles += self.fabric.frame_cycles(rest, self.src, self.dst)
        return max(1, cycles)

    def transfer(self, nbytes: int) -> Generator:
        """Move ``nbytes`` src -> dst, chunk by chunk.  A chunk that hits
        a partition/host-loss window is retried with exponential backoff;
        exhausting the budget raises :class:`MigrationError`."""
        # Fast-forward: a long pre-copy round is a fixed cadence of
        # identical full chunks — a periodic source in its own right.
        # The chunk stream exempts the machines' "migration" veto (it
        # *is* the migration) but keeps shift_carriers off: any other
        # live process near a chunk boundary (a dirtying workload, a
        # timer) blocks the skip via the empty-window check, which is
        # exactly the safety condition dirty-page logging needs.
        ff = self.fabric.sim.ff
        ff_src = (
            ff.source(
                f"precopy:{self.src}->{self.dst}",
                shift_carriers=False,
                veto_exempt=("migration",),
            )
            if ff.enabled
            else None
        )
        sent = 0
        while sent < nbytes:
            chunk = min(self.chunk_bytes, nbytes - sent)
            attempt = 0
            backoff = self.retry_backoff_cycles
            while True:
                try:
                    yield from self.fabric.transfer(
                        self.src, self.dst, chunk, kind="migration"
                    )
                    break
                except UndeliverableError as exc:
                    attempt += 1
                    self.retries += 1
                    if attempt > self.max_retries:
                        raise MigrationError(
                            f"fabric {self.src} -> {self.dst} unusable "
                            f"after {self.max_retries} retries: {exc}"
                        )
                    yield backoff
                    backoff = min(backoff * 2, 16 * self.retry_backoff_cycles)
            if attempt:
                self.fabric.metrics.record_recovery("fabric_retry", attempt)
            sent += chunk
            if (
                ff_src is not None
                and attempt == 0
                and chunk == self.chunk_bytes
            ):
                full_left = (nbytes - sent) // self.chunk_bytes
                if full_left > 1:
                    n = ff_src.observe(full_left)
                    if n:
                        # The fabric's Metrics (cross_host bytes, frame
                        # counts) were scaled by the macro-event; the
                        # per-port/per-wire tallies along the path are
                        # the fabric's to compensate (spine-leaf fabrics
                        # also credit their trunks).
                        sent += n * self.chunk_bytes
                        self.fabric.ff_precopy_compensate(
                            self.src, self.dst, n, self.chunk_bytes
                        )


@dataclass
class MigrationRecord:
    """One orchestrated migration, as the cluster log remembers it."""

    tenant: str
    src: str
    dst: str
    outcome: str  # "ok", "unsupported", or "failed"
    attempts: int
    result: Optional[MigrationResult] = None
    error: str = ""


class Orchestrator:
    """Places and moves tenants across the cluster's hosts."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.records: List[MigrationRecord] = []

    # ------------------------------------------------------------------
    def migrate(
        self,
        tenant_name: str,
        dst_host: str,
        downtime_limit_s: Optional[float] = 0.5,
        downtime_target_s: float = 0.03,
        max_attempts: int = 3,
        attempt_backoff_cycles: int = 2_000_000,
    ) -> MigrationRecord:
        """Live-migrate ``tenant_name`` to ``dst_host``.

        Runs the whole pre-copy on the shared cluster clock with the
        tenant's dirtying workload racing it.  A migration killed by a
        fabric partition is re-attempted (fresh pre-copy) after backoff,
        up to ``max_attempts``; :class:`MigrationNotSupported`
        (hardware-coupled tenant) is terminal immediately.
        """
        cluster = self.cluster
        src = cluster.host_of(tenant_name)
        dst = cluster.host(dst_host)
        if src.name == dst.name:
            raise ValueError(f"{tenant_name} is already on {dst.name}")
        tenant = src.tenants[tenant_name]
        cluster.log(
            f"migrate {tenant_name} {src.name}->{dst.name} "
            f"io={tenant.spec.io_model}"
        )

        attempts = 0
        #: Chunk/wire retries from *failed* attempts: each attempt gets a
        #: fresh channel, so without carrying the running total here the
        #: final MigrationResult.retries would silently drop them.
        carried_retries = 0
        while True:
            attempts += 1
            channel = FabricChannel(cluster.fabric, src.name, dst.name)
            migration = LiveMigration(
                src.machine,
                tenant.vm,
                devices=tenant.devices,
                channel=channel,
                downtime_target_s=downtime_target_s,
                downtime_limit_s=downtime_limit_s,
            )
            try:
                result = self._drive(migration, tenant)
            except MigrationNotSupported as exc:
                record = MigrationRecord(
                    tenant=tenant_name,
                    src=src.name,
                    dst=dst.name,
                    outcome="unsupported",
                    attempts=attempts,
                    error=str(exc),
                )
                self.records.append(record)
                cluster.log(f"migrate {tenant_name} unsupported: {exc}")
                raise
            except MigrationError as exc:
                carried_retries += channel.retries + migration.retries
                cluster.fabric.metrics.record_fault("migration_attempt")
                if attempts >= max_attempts:
                    record = MigrationRecord(
                        tenant=tenant_name,
                        src=src.name,
                        dst=dst.name,
                        outcome="failed",
                        attempts=attempts,
                        error=str(exc),
                    )
                    self.records.append(record)
                    cluster.log(
                        f"migrate {tenant_name} failed after "
                        f"{attempts} attempts: {exc}"
                    )
                    raise
                cluster.log(
                    f"migrate {tenant_name} attempt {attempts} failed "
                    f"({exc}); backing off"
                )
                cluster.sim.run(until=cluster.sim.now + attempt_backoff_cycles)
                continue
            break

        result.retries += carried_retries
        src.evict(tenant_name)
        adopted = dst.adopt(tenant)
        record = MigrationRecord(
            tenant=tenant_name,
            src=src.name,
            dst=dst.name,
            outcome="ok",
            attempts=attempts,
            result=result,
        )
        self.records.append(record)
        cluster.log(
            f"migrate {tenant_name} ok downtime_ms="
            f"{result.downtime_s * 1e3:.3f} rounds={result.rounds} "
            f"bytes={result.bytes_transferred} retries={result.retries} "
            f"attempts={attempts}"
        )
        return record

    def _drive(self, migration: LiveMigration, tenant) -> MigrationResult:
        """Run one migration attempt to completion on the shared clock,
        with the tenant's workload dirtying pages underneath it."""
        sim = self.cluster.sim
        proc = sim.spawn(migration.run(), name=f"migrate:{tenant.name}")
        dirtier = sim.spawn(
            self._dirtier(tenant, proc), name=f"dirtier:{tenant.name}"
        )
        try:
            sim.run()
        finally:
            # An aborted migration leaves the dirtier mid-loop; cancel it
            # or it spins forever on every later run of the shared clock.
            dirtier.cancel()
            audit = getattr(self.cluster, "audit", None)
            if audit is not None:
                audit.on_attempt_end(tenant.name, (proc, dirtier))
        if not proc.done:
            raise MigrationError(
                f"{tenant.name}: migration never completed (deadlock)"
            )
        return proc.result

    def _dirtier(self, tenant, migration_proc) -> Generator:
        """The tenant's workload during migration: re-dirty a window of
        pages at a steady cadence until the pre-copy finishes.  Bounded
        by the migration process, so the simulation always drains."""
        round_idx = 0
        while not migration_proc.done:
            yield 400_000
            if migration_proc.done:
                return
            tenant.dirty_some_pages(round_idx)
            round_idx += 1

    # ------------------------------------------------------------------
    # Destination selection
    # ------------------------------------------------------------------
    def pick_destination(self, spec, exclude=()) -> "object":
        """Choose a destination host for ``spec`` through the cluster's
        placement policy with ``exclude``-named hosts removed from the
        candidate set (the evacuating host, cordoned or rebooting hosts).

        The policy itself filters hosts that no longer fit — a host that
        became infeasible mid-wave simply drops out of the ranking
        rather than being re-ranked and rejected one tenant at a time.
        Raises :class:`~repro.cluster.placement.PlacementError` when no
        candidate fits."""
        excluded = set(exclude)
        candidates = [h for h in self.cluster.hosts if h.name not in excluded]
        return self.cluster.policy.choose(candidates, spec)

    def evacuate(
        self,
        host_name: str,
        downtime_limit_s: Optional[float] = 0.5,
        exclude=(),
    ) -> List[MigrationRecord]:
        """Drain a host for maintenance: migrate every tenant somewhere
        else by the cluster's placement policy, with the evacuating host
        (and any ``exclude``-named hosts) never considered as a
        destination.  Hardware-coupled tenants cannot move — they are
        recorded and left behind (the operator's problem, exactly as in
        a real fleet)."""
        cluster = self.cluster
        src = cluster.host(host_name)
        records: List[MigrationRecord] = []
        for name in sorted(src.tenants):
            tenant = src.tenants[name]
            try:
                dst = self.pick_destination(
                    tenant.spec, exclude={host_name, *exclude}
                )
            except PlacementError as exc:
                cluster.log(f"evacuate {name}: no destination ({exc})")
                continue
            try:
                records.append(
                    self.migrate(
                        name, dst.name, downtime_limit_s=downtime_limit_s
                    )
                )
            except MigrationNotSupported:
                records.append(self.records[-1])
            except MigrationError:
                records.append(self.records[-1])
        return records

    # ------------------------------------------------------------------
    # In-simulation (generator) paths — for control-plane processes
    # ------------------------------------------------------------------
    def migrate_async(
        self,
        tenant_name: str,
        dst_host: str,
        downtime_limit_s: Optional[float] = 0.5,
        downtime_target_s: float = 0.03,
        max_attempts: int = 3,
        attempt_backoff_cycles: int = 2_000_000,
    ) -> Generator:
        """Generator twin of :meth:`migrate` for callers that are
        *themselves* processes on the shared clock (``record = yield
        from orch.migrate_async(...)``): a control plane cannot call the
        blocking path, which re-enters ``sim.run()``.

        Unlike the blocking path it never raises into the simulation:
        "unsupported" and "failed" outcomes are returned as records so
        one stuck tenant cannot crash the whole fleet run.  Destination
        capacity is reserved up front — concurrent evacuations in the
        same upgrade wave cannot race two pre-copies into the same free
        bytes and then fail at adopt time.
        """
        cluster = self.cluster
        src = cluster.host_of(tenant_name)
        dst = cluster.host(dst_host)
        if src.name == dst.name:
            raise ValueError(f"{tenant_name} is already on {dst.name}")
        tenant = src.tenants[tenant_name]
        cluster.log(
            f"migrate {tenant_name} {src.name}->{dst.name} "
            f"io={tenant.spec.io_model}"
        )
        dst.reserve(tenant.spec)
        try:
            attempts = 0
            carried_retries = 0
            while True:
                attempts += 1
                channel = FabricChannel(cluster.fabric, src.name, dst.name)
                migration = LiveMigration(
                    src.machine,
                    tenant.vm,
                    devices=tenant.devices,
                    channel=channel,
                    downtime_target_s=downtime_target_s,
                    downtime_limit_s=downtime_limit_s,
                )
                status, payload = yield from self._drive_async(migration, tenant)
                if status == "unsupported":
                    record = MigrationRecord(
                        tenant=tenant_name,
                        src=src.name,
                        dst=dst.name,
                        outcome="unsupported",
                        attempts=attempts,
                        error=str(payload),
                    )
                    self.records.append(record)
                    cluster.log(f"migrate {tenant_name} unsupported: {payload}")
                    return record
                if status == "error":
                    carried_retries += channel.retries + migration.retries
                    cluster.fabric.metrics.record_fault("migration_attempt")
                    if attempts >= max_attempts:
                        record = MigrationRecord(
                            tenant=tenant_name,
                            src=src.name,
                            dst=dst.name,
                            outcome="failed",
                            attempts=attempts,
                            error=str(payload),
                        )
                        self.records.append(record)
                        cluster.log(
                            f"migrate {tenant_name} failed after "
                            f"{attempts} attempts: {payload}"
                        )
                        return record
                    cluster.log(
                        f"migrate {tenant_name} attempt {attempts} failed "
                        f"({payload}); backing off"
                    )
                    yield attempt_backoff_cycles
                    continue
                result = payload
                break
        finally:
            # Released before adopt below — release + adopt run in the
            # same resume with no yield between them, so the freed
            # reservation cannot be claimed by a concurrent process.
            dst.release(tenant_name)

        result.retries += carried_retries
        src.evict(tenant_name)
        dst.adopt(tenant)
        record = MigrationRecord(
            tenant=tenant_name,
            src=src.name,
            dst=dst.name,
            outcome="ok",
            attempts=attempts,
            result=result,
        )
        self.records.append(record)
        cluster.log(
            f"migrate {tenant_name} ok downtime_ms="
            f"{result.downtime_s * 1e3:.3f} rounds={result.rounds} "
            f"bytes={result.bytes_transferred} retries={result.retries} "
            f"attempts={attempts}"
        )
        return record

    def _drive_async(self, migration: LiveMigration, tenant) -> Generator:
        """Run one attempt from inside the simulation: spawn the
        migration and the tenant's dirtier, join the migration, report
        ``("ok", result) | ("unsupported", exc) | ("error", exc)``.
        Exceptions are folded into the return value — a raise would
        propagate out of the *caller's* process and tear down the run.
        """
        sim = self.cluster.sim

        def guarded() -> Generator:
            try:
                result = yield from migration.run()
            except MigrationNotSupported as exc:
                return ("unsupported", exc)
            except MigrationError as exc:
                return ("error", exc)
            return ("ok", result)

        proc = sim.spawn(guarded(), name=f"migrate:{tenant.name}")
        dirtier = sim.spawn(
            self._dirtier(tenant, proc), name=f"dirtier:{tenant.name}"
        )
        try:
            yield proc
        finally:
            dirtier.cancel()
            audit = getattr(self.cluster, "audit", None)
            if audit is not None:
                audit.on_attempt_end(tenant.name, (proc, dirtier))
        return proc.result

    def evacuate_async(
        self,
        host_name: str,
        downtime_limit_s: Optional[float] = 0.5,
        exclude=(),
    ) -> Generator:
        """Generator twin of :meth:`evacuate` (``records = yield from
        orch.evacuate_async(...)``), for upgrade waves driven by an
        in-simulation control plane.  Destinations are re-picked per
        tenant through the placement policy with the source host and
        ``exclude`` removed; hosts that filled up mid-wave drop out of
        the candidate ranking automatically."""
        cluster = self.cluster
        src = cluster.host(host_name)
        records: List[MigrationRecord] = []
        for name in sorted(src.tenants):
            if name not in src.tenants:
                # Moved away (e.g. by a rebalancer) while an earlier
                # tenant of this wave was mid-flight: nothing to do.
                continue
            tenant = src.tenants[name]
            try:
                dst = self.pick_destination(
                    tenant.spec, exclude={host_name, *exclude}
                )
            except PlacementError as exc:
                cluster.log(f"evacuate {name}: no destination ({exc})")
                continue
            record = yield from self.migrate_async(
                name, dst.name, downtime_limit_s=downtime_limit_s
            )
            records.append(record)
        return records
