"""repro.cluster — a multi-host datacenter on one deterministic clock.

The single-machine layers (hw, hv, core) reproduce the paper's testbed
server.  This package scales the reproduction out: N such servers share
ONE :class:`~repro.sim.Simulator`, attached to a simulated top-of-rack
fabric, with tenant VMs placed by pluggable policy and live-migrated
across hosts by an orchestrator driving the §3.6 machinery over real
(simulated) network links.

The paper's central migration asymmetry becomes a datacenter-operations
property here: DVH virtual-passthrough tenants evacuate cleanly while
physical-passthrough tenants pin their host, because
:class:`~repro.core.migration.LiveMigration` refuses hardware-coupled
VMs — no cluster-level special case needed.

Everything is additive: nothing here is imported by the single-machine
paths, the ``cross_host`` metrics table stays empty off-cluster, and a
fixed seed reproduces the same event trace byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Generator, List, Optional, Tuple

from repro.cluster.fabric import Fabric, FabricFrame, FabricPort, UndeliverableError
from repro.cluster.host import ClusterHost, Tenant, TenantSpec
from repro.cluster.orchestrator import FabricChannel, MigrationRecord, Orchestrator
from repro.cluster.placement import (
    POLICIES,
    BinPackPolicy,
    LoadBalancePolicy,
    PlacementError,
    PlacementPolicy,
    SpreadPolicy,
    make_policy,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim import Simulator, costs_for_arch

__all__ = [
    "Cluster",
    "ClusterHost",
    "Tenant",
    "TenantSpec",
    "Fabric",
    "FabricFrame",
    "FabricPort",
    "FabricChannel",
    "UndeliverableError",
    "Orchestrator",
    "MigrationRecord",
    "PlacementPolicy",
    "PlacementError",
    "BinPackPolicy",
    "SpreadPolicy",
    "LoadBalancePolicy",
    "POLICIES",
    "make_policy",
]


class Cluster:
    """N booted hosts, one fabric, one clock, one event trace."""

    def __init__(
        self,
        num_hosts: int = 4,
        seed: int = 0,
        policy: str = "bin-pack",
        guest_hv: str = "kvm",
        arch: str = "x86",
        stack_levels: int = 2,
        workers: int = 2,
        costs=None,
        fault_plan: Optional[FaultPlan] = None,
        fast_forward: Optional[bool] = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError("a cluster needs at least one host")
        self.seed = seed
        self.arch = arch
        self.sim = Simulator(seed=seed, fast_forward=fast_forward)
        self.costs = costs if costs is not None else costs_for_arch(arch)
        self.fabric = Fabric(self.sim, self.costs)
        self.policy = make_policy(policy)
        #: The deterministic event trace: every placement, migration and
        #: fault decision, stamped with the shared simulated clock.
        self.events: List[str] = []
        self.hosts: List[ClusterHost] = []
        for i in range(num_hosts):
            host = ClusterHost(
                f"host{i}",
                self.sim,
                self.costs,
                guest_hv=guest_hv,
                arch=arch,
                stack_levels=stack_levels,
                workers=workers,
                seed=seed + i,
            )
            host.port = self.fabric.attach(host.name)
            self.hosts.append(host)
        self.orchestrator = Orchestrator(self)
        #: Fabric-level fault injector (or None).  Attached to the
        #: Fabric, which quacks enough like a machine (sim + metrics).
        self.faults = None
        #: Runtime invariant auditor (see repro.audit), or None =
        #: auditing off.  Set by :meth:`enable_audit` /
        #: ``Auditor.attach_cluster``; the orchestrator consults it.
        self.audit = None
        if fault_plan is not None and not fault_plan.is_empty:
            self.faults = FaultInjector(self.fabric, fault_plan, seed=seed).attach()
        # Drain boot-time backend startup so the trace starts quiet.
        self.sim.run()
        # Non-default arches announce themselves; the default keeps the
        # pre-arch trace (and so every pinned digest) byte-identical.
        arch_note = f" arch={arch}" if arch != "x86" else ""
        self.log(
            f"cluster up hosts={num_hosts} policy={policy} "
            f"guest_hv={guest_hv}{arch_note} levels={stack_levels} seed={seed}"
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def host(self, name: str) -> ClusterHost:
        for h in self.hosts:
            if h.name == name:
                return h
        raise KeyError(f"no host named {name!r}")

    def host_of(self, tenant_name: str) -> ClusterHost:
        for h in self.hosts:
            if tenant_name in h.tenants:
                return h
        raise KeyError(f"no tenant named {tenant_name!r}")

    def tenants(self) -> Dict[str, Tenant]:
        out: Dict[str, Tenant] = {}
        for h in self.hosts:
            out.update(h.tenants)
        return out

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, spec: TenantSpec) -> Tenant:
        """Admit a tenant on the host the policy picks."""
        host = self.policy.choose(self.hosts, spec)
        tenant = host.admit(spec)
        self.sim.run()  # settle backend startup deterministically
        self.log(
            f"place {spec.name} io={spec.io_model} mem={spec.memory_gb}GB "
            f"-> {host.name}"
        )
        return tenant

    def migrate(self, tenant_name: str, dst_host: str, **kwargs) -> MigrationRecord:
        return self.orchestrator.migrate(tenant_name, dst_host, **kwargs)

    def enable_audit(self):
        """Arm the runtime invariant auditor over every host and the
        fabric; returns the :class:`~repro.audit.Auditor` (call its
        ``finish()`` after the run).  Opt-in: auditing observes only,
        the simulated bytes are identical either way."""
        from repro.audit import Auditor

        return Auditor().attach_cluster(self)

    # ------------------------------------------------------------------
    # Cross-host tenant traffic
    # ------------------------------------------------------------------
    def stream(
        self,
        src_host: str,
        dst_host: str,
        nbytes: int,
        chunk: int = 64 * 1024,
        retry_backoff_cycles: int = 500_000,
    ):
        """Spawn a background bulk flow src -> dst (kind "net"): the
        contention migrations feel on a busy fabric.  Chunks that hit a
        partition window wait out the backoff and retry forever — a
        patient bulk copy.  Returns the spawned process."""
        return self.sim.spawn(
            self._stream(src_host, dst_host, nbytes, chunk, retry_backoff_cycles),
            name=f"stream:{src_host}->{dst_host}",
        )

    def _stream(
        self, src: str, dst: str, nbytes: int, chunk: int, backoff: int
    ) -> Generator:
        sent = 0
        while sent < nbytes:
            size = min(chunk, nbytes - sent)
            try:
                yield from self.fabric.transfer(src, dst, size, kind="net")
            except UndeliverableError:
                yield backoff
                continue
            sent += size

    # ------------------------------------------------------------------
    # Trace / reporting
    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        self.events.append(f"{self.sim.now:>14} {message}")

    def trace(self) -> str:
        """The full event trace — byte-identical for identical seeds."""
        return "\n".join(self.events)

    def digest(self) -> str:
        """sha256 over the trace plus the fabric metrics snapshot."""
        blob = json.dumps(
            {
                "trace": self.events,
                "fabric": {
                    str(k): v
                    for k, v in sorted(
                        self.fabric.metrics.snapshot()["cross_host"].items(),
                        key=lambda kv: str(kv[0]),
                    )
                },
                "now": self.sim.now,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def summary(self) -> Dict:
        """A JSON-friendly cluster snapshot for the CLI and benchmarks."""
        return {
            "seed": self.seed,
            "policy": self.policy.name,
            "sim_cycles": self.sim.now,
            "hosts": {
                h.name: {
                    "tenants": sorted(h.tenants),
                    "mem_committed_gb": h.mem_committed >> 30,
                    "cycle_load": h.cycle_load,
                }
                for h in self.hosts
            },
            "fabric": self.fabric.stats(),
            "migrations": [
                {
                    "tenant": r.tenant,
                    "src": r.src,
                    "dst": r.dst,
                    "outcome": r.outcome,
                    "attempts": r.attempts,
                    "downtime_ms": (
                        round(r.result.downtime_s * 1e3, 3) if r.result else None
                    ),
                    "rounds": r.result.rounds if r.result else None,
                    "bytes": r.result.bytes_transferred if r.result else None,
                    "retries": r.result.retries if r.result else None,
                }
                for r in self.orchestrator.records
            ],
            "digest": self.digest(),
        }
