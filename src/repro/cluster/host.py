"""Cluster hosts and tenant VMs.

A :class:`ClusterHost` is one datacenter server: a full
:class:`~repro.hw.machine.Machine` built on the cluster's *shared*
simulator, booted with a complete KVM (or Xen) hypervisor stack through
:func:`repro.hv.stack.build_stack`.  Tenant VMs are then admitted on top
of the booted stack:

* ``virtio`` tenants — L1 VMs with a paravirtual NIC (migration
  capability attached, so they live-migrate);
* ``vp`` tenants — **nested** (L2) VMs using DVH virtual-passthrough
  (§3.6): the device is the host's, fully encapsulable, so the tenant
  migrates even though it drives what looks like passthrough hardware;
* ``passthrough`` tenants — nested VMs with a real SR-IOV VF assigned.
  :func:`~repro.hv.passthrough.assign_physical_device` marks the whole
  chain ``hardware_coupled``; migrating one raises
  :class:`~repro.hv.passthrough.MigrationNotSupported`.  The asymmetry
  is emergent, not special-cased here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.migration import add_migration_capability
from repro.core.vpassthrough import assign_virtual_device
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.machine import GB, Machine
from repro.hw.mem import PAGE_SIZE
from repro.hv.passthrough import assign_physical_device, dma_pool_pfns
from repro.hv.stack import (
    IO_VIRTIO,
    StackConfig,
    build_stack,
)
from repro.hv.virtio_backend import HostVhost
from repro.core.vpassthrough import populate_chain_epts

__all__ = ["TenantSpec", "Tenant", "ClusterHost"]

#: Tenant network I/O models (cluster-level names).
TENANT_VIRTIO = "virtio"
TENANT_VP = "vp"
TENANT_PASSTHROUGH = "passthrough"

_TENANT_MODELS = (TENANT_VIRTIO, TENANT_VP, TENANT_PASSTHROUGH)


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """What a tenant asks for."""

    name: str
    #: "virtio" (L1 VM), "vp" (nested VM, DVH virtual-passthrough) or
    #: "passthrough" (nested VM, physical SR-IOV VF).
    io_model: str = TENANT_VIRTIO
    memory_gb: int = 12
    #: Abstract steady-state CPU demand (cycles per scheduling quantum);
    #: what the load-balance placement policy packs against.
    load: int = 1_000
    #: Pages the tenant's workload re-dirties per dirtying interval while
    #: it runs (drives live-migration pre-copy rounds).
    dirty_pages: int = 64

    def __post_init__(self) -> None:
        if self.io_model not in _TENANT_MODELS:
            raise ValueError(
                f"io_model must be one of {_TENANT_MODELS}, got "
                f"{self.io_model!r}"
            )
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")


@dataclass(slots=True)
class Tenant:
    """A placed tenant: the spec plus the live objects backing it."""

    spec: TenantSpec
    host: str
    vm: object
    #: Virtual devices whose state travels through the PCI migration
    #: capability on migration (empty for passthrough tenants — their VF
    #: is hardware, there is nothing encapsulable to capture).
    devices: List = field(default_factory=list)
    #: How many times this tenant has been live-migrated.
    migrations: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def memory_bytes(self) -> int:
        return self.spec.memory_gb * GB

    def dirty_some_pages(self, round_idx: int) -> None:
        """The tenant's workload touches memory: re-dirty a sliding
        window of pages (feeds migration dirty logs)."""
        pages = self.spec.dirty_pages
        if pages <= 0:
            return
        span = max(pages * 4, 1)
        start_page = (round_idx * pages) % span
        self.vm.memory.write_range(start_page * PAGE_SIZE, pages * PAGE_SIZE)


class ClusterHost:
    """One server of the cluster, booted and accepting tenants."""

    def __init__(
        self,
        name: str,
        sim,
        costs,
        guest_hv: str = "kvm",
        stack_levels: int = 2,
        workers: int = 2,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.machine = Machine(sim=sim, costs=costs)
        self.guest_hv = guest_hv
        self.seed = seed
        config = StackConfig(
            levels=stack_levels,
            io_model=IO_VIRTIO,
            guest_hv=guest_hv,
            workers=workers,
            flow=f"{name}-sys",
            seed=seed,
        )
        #: The host's booted system stack: L0, the L1 guest hypervisor,
        #: and the management VMs — the platform tenants land on.
        self.stack = build_stack(config, machine=self.machine)
        self.tenants: Dict[str, Tenant] = {}
        #: Fabric port, set by the cluster when it attaches this host.
        self.port = None
        #: pCPUs the system stack claimed; tenants share the worker pool
        #: (vCPU overcommit, like a real cloud host).
        self._workers = workers

    # ------------------------------------------------------------------
    # Capacity accounting (what placement policies read)
    # ------------------------------------------------------------------
    @property
    def l0(self):
        return self.machine.host_hv

    @property
    def guest_hypervisor(self):
        """The L1 guest hypervisor (None on a 1-level host)."""
        return self.stack.hvs[1] if len(self.stack.hvs) > 1 else None

    @property
    def mem_total(self) -> int:
        return self.machine.memory.size_bytes

    @property
    def mem_committed(self) -> int:
        return sum(t.memory_bytes for t in self.tenants.values())

    @property
    def mem_free(self) -> int:
        return self.mem_total - self.mem_committed

    @property
    def cycle_load(self) -> int:
        """Committed steady-state CPU demand across tenants."""
        return sum(t.spec.load for t in self.tenants.values())

    def fits(self, spec: TenantSpec) -> bool:
        return spec.memory_gb * GB <= self.mem_free

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def admit(self, spec: TenantSpec) -> Tenant:
        """Create the tenant's VM (and device plumbing) on this host."""
        if spec.name in self.tenants:
            raise ValueError(f"{spec.name} already on {self.name}")
        if not self.fits(spec):
            raise ValueError(
                f"{self.name}: {spec.name} needs {spec.memory_gb} GB, "
                f"only {self.mem_free // GB} GB free"
            )
        if spec.io_model == TENANT_VIRTIO:
            tenant = self._admit_virtio(spec)
        elif spec.io_model == TENANT_VP:
            tenant = self._admit_vp(spec)
        else:
            tenant = self._admit_passthrough(spec)
        self.tenants[spec.name] = tenant
        return tenant

    def _vm_name(self, spec: TenantSpec) -> str:
        return f"{self.name}/{spec.name}"

    def _admit_virtio(self, spec: TenantSpec) -> Tenant:
        """L1 VM with a host-provided paravirtual NIC."""
        vm = self.l0.create_vm(self._vm_name(spec), spec.memory_gb * GB)
        vm.add_vcpu(self.machine.cpus[0], None)
        dev = VirtioDevice(
            f"{self._vm_name(spec)}-net",
            kind="net",
            num_queues=2,
            provider_level=0,
        )
        vm.bus.plug(dev)
        add_migration_capability(dev)
        HostVhost(self.l0, dev, user_vm=vm, flow=self._vm_name(spec)).start()
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[dev])

    def _nested_vm(self, spec: TenantSpec):
        """A nested (L2) VM under the host's guest hypervisor, its vCPU
        chained through an L1 system-stack vCPU on the same pCPU."""
        ghv = self.guest_hypervisor
        if ghv is None:
            raise ValueError(
                f"{self.name}: nested tenants need a >=2-level host stack"
            )
        vm = ghv.create_vm(self._vm_name(spec), spec.memory_gb * GB)
        parent = self.stack.vms[0].vcpus[len(self.tenants) % self._workers]
        vm.add_vcpu(parent.pcpu, parent)
        return vm

    def _admit_vp(self, spec: TenantSpec) -> Tenant:
        """Nested VM driving an L0 device via DVH virtual-passthrough."""
        vm = self._nested_vm(spec)
        dev = VirtioDevice(
            f"{self._vm_name(spec)}-net-vp",
            kind="net",
            num_queues=2,
            provider_level=0,
        )
        vm.bus.plug(dev)
        add_migration_capability(dev)
        assignment = assign_virtual_device(self.machine, dev, vm)
        HostVhost(
            self.l0,
            dev,
            user_vm=vm,
            flow=self._vm_name(spec),
            translate=assignment.translate,
        ).start()
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[dev])

    def _admit_passthrough(self, spec: TenantSpec) -> Tenant:
        """Nested VM with a real SR-IOV VF — fast, but hardware-coupled."""
        vm = self._nested_vm(spec)
        vf = self.machine.nic.create_vf()
        pfns = dma_pool_pfns()
        populate_chain_epts(vm, pfns)
        self.machine.bus.plug(vf)
        assign_physical_device(self.machine, vf, vm, pfns)
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[])

    def evict(self, name: str) -> Tenant:
        """Remove a tenant from this host's books (its source-side VM
        stops being charged against capacity; the sim objects go idle).
        The NIC flow is unregistered so stray packets drop, like a real
        host tearing down a tap device."""
        tenant = self.tenants.pop(name)
        self.machine.nic.unregister_flow(self._vm_name(tenant.spec))
        return tenant

    def adopt(self, tenant: Tenant) -> Tenant:
        """Re-home a migrated-in tenant: rebuild its VM and device
        plumbing on this host's stack (the destination side of a live
        migration) and account for its memory."""
        if not self.fits(tenant.spec):
            raise ValueError(
                f"{self.name}: cannot adopt {tenant.name}, "
                f"{self.mem_free // GB} GB free"
            )
        fresh = self.admit(tenant.spec)
        fresh.migrations = tenant.migrations + 1
        return fresh

    def describe(self) -> str:
        names = ",".join(sorted(self.tenants)) or "-"
        return (
            f"{self.name}: {len(self.tenants)} tenants "
            f"[{names}] mem {self.mem_committed // GB}/"
            f"{self.mem_total // GB} GB load {self.cycle_load}"
        )
