"""Cluster hosts and tenant VMs.

A :class:`ClusterHost` is one datacenter server: a full
:class:`~repro.hw.machine.Machine` built on the cluster's *shared*
simulator, booted with a complete KVM (or Xen) hypervisor stack through
:func:`repro.hv.stack.build_stack`.  Tenant VMs are then admitted on top
of the booted stack:

* ``virtio`` tenants — L1 VMs with a paravirtual NIC (migration
  capability attached, so they live-migrate);
* ``vp`` tenants — **nested** (L2) VMs using DVH virtual-passthrough
  (§3.6): the device is the host's, fully encapsulable, so the tenant
  migrates even though it drives what looks like passthrough hardware;
* ``passthrough`` tenants — nested VMs with a real SR-IOV VF assigned.
  :func:`~repro.hv.passthrough.assign_physical_device` marks the whole
  chain ``hardware_coupled``; migrating one raises
  :class:`~repro.hv.passthrough.MigrationNotSupported`.  The asymmetry
  is emergent, not special-cased here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.migration import add_migration_capability
from repro.core.vpassthrough import assign_virtual_device
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.machine import GB, Machine
from repro.hw.mem import PAGE_SIZE
from repro.hv.passthrough import assign_physical_device, dma_pool_pfns
from repro.hv.stack import (
    IO_VIRTIO,
    StackConfig,
    build_stack,
)
from repro.hv.virtio_backend import HostVhost
from repro.core.vpassthrough import populate_chain_epts
from repro.ooh.grants import GrantConflictError, GrantSet, GrantTable

__all__ = ["TenantSpec", "Tenant", "ClusterHost"]

#: Tenant network I/O models (cluster-level names).
TENANT_VIRTIO = "virtio"
TENANT_VP = "vp"
TENANT_PASSTHROUGH = "passthrough"

_TENANT_MODELS = (TENANT_VIRTIO, TENANT_VP, TENANT_PASSTHROUGH)

#: Default steady-state cycle-load capacity a host offers per worker
#: vCPU.  ``fits`` refuses tenants past this headroom so control-plane
#: rebalancing cannot thrash tenants onto an already-hot host (the
#: memory check alone would happily stack them).
LOAD_PER_WORKER = 12_000

#: Memory of a :class:`~repro.hw.machine.Machine` built with defaults —
#: what an unbooted (quiescent) host will have once it boots.  Capacity
#: accounting must not depend on whether the stack is built yet.
HOST_MEMORY_BYTES = 192 * GB


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """What a tenant asks for."""

    name: str
    #: "virtio" (L1 VM), "vp" (nested VM, DVH virtual-passthrough) or
    #: "passthrough" (nested VM, physical SR-IOV VF).
    io_model: str = TENANT_VIRTIO
    memory_gb: int = 12
    #: Abstract steady-state CPU demand (cycles per scheduling quantum);
    #: what the load-balance placement policy packs against.
    load: int = 1_000
    #: Pages the tenant's workload re-dirties per dirtying interval while
    #: it runs (drives live-migration pre-copy rounds).
    dirty_pages: int = 64
    #: OoH feature grants this tenant's placement asks the host to hand
    #: its guest hypervisor (names from ``repro.ooh.OOH_FEATURES``).
    #: Installed on the host's machine at admission; only meaningful for
    #: nested tenants ("vp"), whose exits the grants short-circuit.
    grants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.io_model not in _TENANT_MODELS:
            raise ValueError(
                f"io_model must be one of {_TENANT_MODELS}, got "
                f"{self.io_model!r}"
            )
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.grants:
            # Unknown names raise UnknownGrantError here, at spec time.
            granted = GrantSet.from_names(self.grants)
            if self.io_model == TENANT_PASSTHROUGH and (
                granted.dirty_logging or granted.dirty_ring
            ):
                raise GrantConflictError(
                    f"{self.name}: dirty-tracking grants cannot cover a "
                    "passthrough tenant: device DMA bypasses the granted log"
                )


@dataclass(slots=True)
class Tenant:
    """A placed tenant: the spec plus the live objects backing it."""

    spec: TenantSpec
    host: str
    vm: object
    #: Virtual devices whose state travels through the PCI migration
    #: capability on migration (empty for passthrough tenants — their VF
    #: is hardware, there is nothing encapsulable to capture).
    devices: List = field(default_factory=list)
    #: How many times this tenant has been live-migrated.
    migrations: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def memory_bytes(self) -> int:
        return self.spec.memory_gb * GB

    def dirty_some_pages(self, round_idx: int) -> None:
        """The tenant's workload touches memory: re-dirty a sliding
        window of pages (feeds migration dirty logs)."""
        pages = self.spec.dirty_pages
        if pages <= 0:
            return
        span = max(pages * 4, 1)
        start_page = (round_idx * pages) % span
        self.vm.memory.write_range(start_page * PAGE_SIZE, pages * PAGE_SIZE)


class ClusterHost:
    """One server of the cluster, booted and accepting tenants."""

    def __init__(
        self,
        name: str,
        sim,
        costs,
        guest_hv: str = "kvm",
        arch: str = "x86",
        stack_levels: int = 2,
        workers: int = 2,
        seed: int = 0,
        lazy: bool = False,
        load_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.guest_hv = guest_hv
        self.arch = arch
        self.seed = seed
        self._sim = sim
        self._costs = costs
        self._stack_levels = stack_levels
        self.tenants: Dict[str, Tenant] = {}
        #: Fabric port, set by the cluster when it attaches this host.
        self.port = None
        #: pCPUs the system stack claimed; tenants share the worker pool
        #: (vCPU overcommit, like a real cloud host).
        self._workers = workers
        #: Cycle-load admission ceiling (see ``fits``).
        self.load_capacity = (
            load_capacity if load_capacity is not None else workers * LOAD_PER_WORKER
        )
        #: Capacity reserved for in-flight migrations targeting this
        #: host (name -> spec): concurrent control-plane migrations
        #: claim destination room up front so two pre-copies cannot race
        #: into the same free bytes.  Always empty on the blocking
        #: orchestrator paths.
        self._reservations: Dict[str, TenantSpec] = {}
        #: How many times this host's system stack has been built (a
        #: quiescent host that never sees a tenant stays at zero).
        self.boots = 0
        self.machine: Optional[Machine] = None
        #: The host's booted system stack: L0, the L1 guest hypervisor,
        #: and the management VMs — the platform tenants land on.
        #: ``None`` while the host is quiescent (lazy, pre-first-touch)
        #: or down for a kernel upgrade.
        self.stack = None
        if not lazy:
            self.boot()

    # ------------------------------------------------------------------
    # Boot / teardown (the quiescent-host optimization)
    # ------------------------------------------------------------------
    @property
    def booted(self) -> bool:
        return self.stack is not None

    def boot(self) -> None:
        """Build the machine and its full system stack.  Idempotent.

        A quiescent host defers this until a tenant, migration, or
        explicit touch needs the stack; until then it contributes zero
        engine events and no Metrics to fast-forward fingerprints.
        Accounting stays byte-identical either way: booting only parks
        backend processes on events and never draws the shared RNG or
        writes the cluster trace.
        """
        if self.stack is not None:
            return
        self.machine = Machine(sim=self._sim, costs=self._costs)
        config = StackConfig(
            levels=self._stack_levels,
            io_model=IO_VIRTIO,
            guest_hv=self.guest_hv,
            workers=self._workers,
            flow=f"{self.name}-sys",
            seed=self.seed,
            arch=self.arch,
        )
        self.stack = build_stack(config, machine=self.machine)
        self.boots += 1

    def ensure_booted(self) -> None:
        self.boot()

    def shutdown(self) -> None:
        """Tear the system stack down (the power-off half of a kernel
        upgrade).  Only a tenant-free host may shut down.  The machine's
        Metrics and fast-forward veto are unregistered so a fleet of
        upgraded-and-idle hosts stops contributing to every epoch
        fingerprint — same invalidation discipline as registration."""
        if self.tenants:
            raise ValueError(
                f"{self.name}: cannot shut down with "
                f"{len(self.tenants)} tenants aboard"
            )
        if self.machine is not None:
            ff = getattr(self._sim, "ff", None)
            if ff is not None:
                ff.unregister_metrics(self.machine.metrics)
                ff.remove_veto(self.machine._ff_veto)
        self.machine = None
        self.stack = None

    # ------------------------------------------------------------------
    # Capacity accounting (what placement policies read)
    # ------------------------------------------------------------------
    @property
    def l0(self):
        self.ensure_booted()
        return self.machine.host_hv

    @property
    def guest_hypervisor(self):
        """The L1 guest hypervisor (None on a 1-level host)."""
        self.ensure_booted()
        return self.stack.hvs[1] if len(self.stack.hvs) > 1 else None

    @property
    def mem_total(self) -> int:
        if self.machine is not None:
            return self.machine.memory.size_bytes
        return HOST_MEMORY_BYTES

    @property
    def mem_committed(self) -> int:
        return sum(t.memory_bytes for t in self.tenants.values())

    @property
    def mem_reserved(self) -> int:
        return sum(s.memory_gb * GB for s in self._reservations.values())

    @property
    def mem_free(self) -> int:
        return self.mem_total - self.mem_committed - self.mem_reserved

    @property
    def cycle_load(self) -> int:
        """Committed steady-state CPU demand across tenants."""
        return sum(t.spec.load for t in self.tenants.values())

    @property
    def load_reserved(self) -> int:
        return sum(s.load for s in self._reservations.values())

    def fits(self, spec: TenantSpec) -> bool:
        """Memory AND cycle-load headroom: a tenant must find both its
        bytes and its steady-state CPU demand free (reservations held by
        in-flight migrations count as taken)."""
        if spec.memory_gb * GB > self.mem_free:
            return False
        return self.cycle_load + self.load_reserved + spec.load <= self.load_capacity

    # ------------------------------------------------------------------
    # Migration reservations (async orchestrator paths)
    # ------------------------------------------------------------------
    def reserve(self, spec: TenantSpec) -> None:
        """Hold capacity for an inbound migration of ``spec``."""
        if spec.name in self._reservations:
            raise ValueError(f"{spec.name} already reserved on {self.name}")
        self._reservations[spec.name] = spec

    def release(self, name: str) -> None:
        """Drop a reservation (migration finished or failed)."""
        self._reservations.pop(name, None)

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def admit(self, spec: TenantSpec) -> Tenant:
        """Create the tenant's VM (and device plumbing) on this host."""
        self.ensure_booted()
        if spec.name in self.tenants:
            raise ValueError(f"{spec.name} already on {self.name}")
        if not self.fits(spec):
            raise ValueError(
                f"{self.name}: {spec.name} needs {spec.memory_gb} GB, "
                f"only {self.mem_free // GB} GB free"
            )
        if spec.grants:
            self._install_grants(GrantSet.from_names(spec.grants))
        if spec.io_model == TENANT_VIRTIO:
            tenant = self._admit_virtio(spec)
        elif spec.io_model == TENANT_VP:
            tenant = self._admit_vp(spec)
        else:
            tenant = self._admit_passthrough(spec)
        self.tenants[spec.name] = tenant
        return tenant

    def _install_grants(self, grants: GrantSet) -> None:
        """Hand the named OoH features to this host's guest hypervisor
        (tenants on one host accumulate into a shared grant table)."""
        if self.machine.ooh is None:
            self.machine.ooh = GrantTable(grants, self.machine.metrics)
        else:
            self.machine.ooh.install(grants)

    def _vm_name(self, spec: TenantSpec) -> str:
        return f"{self.name}/{spec.name}"

    def _admit_virtio(self, spec: TenantSpec) -> Tenant:
        """L1 VM with a host-provided paravirtual NIC."""
        vm = self.l0.create_vm(self._vm_name(spec), spec.memory_gb * GB)
        vm.add_vcpu(self.machine.cpus[0], None)
        dev = VirtioDevice(
            f"{self._vm_name(spec)}-net",
            kind="net",
            num_queues=2,
            provider_level=0,
        )
        vm.bus.plug(dev)
        add_migration_capability(dev)
        HostVhost(self.l0, dev, user_vm=vm, flow=self._vm_name(spec)).start()
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[dev])

    def _nested_vm(self, spec: TenantSpec):
        """A nested (L2) VM under the host's guest hypervisor, its vCPU
        chained through an L1 system-stack vCPU on the same pCPU."""
        ghv = self.guest_hypervisor
        if ghv is None:
            raise ValueError(
                f"{self.name}: nested tenants need a >=2-level host stack"
            )
        vm = ghv.create_vm(self._vm_name(spec), spec.memory_gb * GB)
        parent = self.stack.vms[0].vcpus[len(self.tenants) % self._workers]
        vm.add_vcpu(parent.pcpu, parent)
        return vm

    def _admit_vp(self, spec: TenantSpec) -> Tenant:
        """Nested VM driving an L0 device via DVH virtual-passthrough."""
        vm = self._nested_vm(spec)
        dev = VirtioDevice(
            f"{self._vm_name(spec)}-net-vp",
            kind="net",
            num_queues=2,
            provider_level=0,
        )
        vm.bus.plug(dev)
        add_migration_capability(dev)
        assignment = assign_virtual_device(self.machine, dev, vm)
        HostVhost(
            self.l0,
            dev,
            user_vm=vm,
            flow=self._vm_name(spec),
            translate=assignment.translate,
        ).start()
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[dev])

    def _admit_passthrough(self, spec: TenantSpec) -> Tenant:
        """Nested VM with a real SR-IOV VF — fast, but hardware-coupled."""
        vm = self._nested_vm(spec)
        vf = self.machine.nic.create_vf()
        pfns = dma_pool_pfns()
        populate_chain_epts(vm, pfns)
        self.machine.bus.plug(vf)
        assign_physical_device(self.machine, vf, vm, pfns)
        return Tenant(spec=spec, host=self.name, vm=vm, devices=[])

    def evict(self, name: str) -> Tenant:
        """Remove a tenant from this host's books (its source-side VM
        stops being charged against capacity; the sim objects go idle).
        The NIC flow is unregistered so stray packets drop, like a real
        host tearing down a tap device."""
        tenant = self.tenants.pop(name)
        self.machine.nic.unregister_flow(self._vm_name(tenant.spec))
        return tenant

    def adopt(self, tenant: Tenant) -> Tenant:
        """Re-home a migrated-in tenant: rebuild its VM and device
        plumbing on this host's stack (the destination side of a live
        migration) and account for its memory."""
        if not self.fits(tenant.spec):
            raise ValueError(
                f"{self.name}: cannot adopt {tenant.name}, "
                f"{self.mem_free // GB} GB free"
            )
        fresh = self.admit(tenant.spec)
        fresh.migrations = tenant.migrations + 1
        return fresh

    def describe(self) -> str:
        names = ",".join(sorted(self.tenants)) or "-"
        return (
            f"{self.name}: {len(self.tenants)} tenants "
            f"[{names}] mem {self.mem_committed // GB}/"
            f"{self.mem_total // GB} GB load {self.cycle_load}"
        )
