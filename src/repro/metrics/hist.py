"""Log-spaced latency histograms and the per-request lifecycle record.

Latency capture has to satisfy three masters at once:

* **determinism** — same seed, same histogram, byte for byte, whether
  fast-forward skipped 10k epochs or micro-stepped every one, and
  whether a sweep ran serial or under ``--jobs``;
* **mergeability** — per-tenant histograms from many hosts (or many
  sweep cells) must combine without loss;
* **cost** — capture off must add *zero* work to the hot path, exactly
  like span tracing (``machine.spans is None``).

The answer is the HDR-histogram trick on the simulated integer clock:
values are bucketed into log-spaced bins with :data:`SUB` linear
sub-buckets per power of two, so bucket counts are small integers, the
relative quantization error is bounded (< 1/SUB), and every operation —
record, merge, diff, scale-by-N — is exact integer arithmetic.  Bucket
counts live in :class:`repro.metrics.Metrics` Counter tables (``latency``
and ``latency_sum``), which rides the ``_TABLES`` registry: snapshots,
fast-forward fingerprints, and ``apply_scaled`` macro-events all cover
them with no additional machinery.

:func:`exact_percentile` is the one shared implementation of the
nearest-rank percentile rule previously duplicated by
``AppResult.latency_percentile`` and the microbenchmark list math.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SUB_BITS",
    "SUB",
    "bucket_index",
    "bucket_lo",
    "bucket_hi",
    "exact_percentile",
    "Histogram",
    "RequestRecord",
    "RequestCapture",
]

#: Linear sub-buckets per power of two.  32 sub-buckets bound the
#: relative quantization error of a bucketed percentile at ~3.1%.
SUB_BITS = 5
SUB = 1 << SUB_BITS


def bucket_index(value: int) -> int:
    """Map a non-negative integer (cycles) to its histogram bucket.

    Values below :data:`SUB` get exact singleton buckets; above that,
    each power of two splits into :data:`SUB` linear sub-buckets.  The
    mapping is monotonic and contiguous (no unused indices).
    """
    if value < SUB:
        return value if value > 0 else 0
    exp = value.bit_length() - 1 - SUB_BITS
    return (exp << SUB_BITS) + (value >> exp)


def bucket_lo(index: int) -> int:
    """Smallest value mapping to ``index`` — the bucket's canonical
    representative (deterministic, never above the true value)."""
    if index < 2 * SUB:
        return index
    exp = (index >> SUB_BITS) - 1
    return ((index & (SUB - 1)) + SUB) << exp


def bucket_hi(index: int) -> int:
    """Largest value mapping to ``index`` (inclusive)."""
    return bucket_lo(index + 1) - 1


def exact_percentile(values: Sequence[int], p: float) -> int:
    """Nearest-rank percentile over raw values.

    This is the exact rule ``AppResult.latency_percentile`` has always
    used (``sorted(values)[min(n - 1, int(n * p / 100))]``), hoisted
    here so every caller shares one implementation.  Raises on an empty
    sequence or an out-of-range ``p`` so callers surface, not mask,
    missing data.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(len(ordered) * p / 100))
    return ordered[idx]


class Histogram:
    """A mergeable fixed-bucket latency histogram (integer counts).

    ``counts`` maps bucket index -> count; ``total`` is the number of
    recorded values and ``sum`` their exact integer total, so
    :meth:`mean` is byte-identical to ``sum(values)/len(values)`` on
    the raw list.  Percentiles use the same nearest-rank rule as
    :func:`exact_percentile` over the bucketed distribution, reporting
    the bucket's canonical low edge.
    """

    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0

    # ------------------------------------------------------------------
    # Recording / combining
    # ------------------------------------------------------------------
    def record(self, value: int, n: int = 1) -> None:
        idx = bucket_index(value)
        self.counts[idx] = self.counts.get(idx, 0) + n
        self.total += n
        self.sum += value * n

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into self (exact; order-independent)."""
        counts = self.counts
        for idx, n in other.counts.items():
            counts[idx] = counts.get(idx, 0) + n
        self.total += other.total
        self.sum += other.sum
        return self

    def copy(self) -> "Histogram":
        out = Histogram()
        out.counts = dict(self.counts)
        out.total = self.total
        out.sum = self.sum
        return out

    def diff(self, earlier: "Histogram") -> "Histogram":
        """Counts accumulated since ``earlier`` (a copied snapshot) —
        the windowed view the SLO gate samples so old breaches age out."""
        out = Histogram()
        for idx, n in self.counts.items():
            grown = n - earlier.counts.get(idx, 0)
            if grown > 0:
                out.counts[idx] = grown
        out.total = sum(out.counts.values())
        out.sum = self.sum - earlier.sum
        return out

    @classmethod
    def from_buckets(
        cls, buckets: Iterable[Tuple[int, int]], total_sum: int = 0
    ) -> "Histogram":
        """Rebuild from (bucket index, count) pairs — the shape stored
        in the ``Metrics.latency`` table."""
        out = cls()
        for idx, n in buckets:
            if n > 0:
                out.counts[idx] = out.counts.get(idx, 0) + n
        out.total = sum(out.counts.values())
        out.sum = total_sum
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def percentile(self, p: float) -> int:
        """Nearest-rank percentile over the bucketed distribution, as
        the bucket's low edge (cycles).  Deterministic; quantization
        error bounded by the bucket width (< 1/SUB relative)."""
        if not self.total:
            raise ValueError("percentile of an empty histogram")
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        rank = min(self.total - 1, int(self.total * p / 100))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen > rank:
                return bucket_lo(idx)
        raise AssertionError("unreachable: rank < total")  # pragma: no cover

    def mean(self) -> float:
        if not self.total:
            raise ValueError("mean of an empty histogram")
        return self.sum / self.total

    def count_above(self, value: int) -> int:
        """Recorded values whose *bucket* lies entirely above ``value``
        (conservative: boundary buckets are not counted)."""
        return sum(
            n for idx, n in self.counts.items() if bucket_lo(idx) > value
        )

    def snapshot(self) -> Dict[int, int]:
        """Plain-dict bucket counts, sorted by index, for reports and
        digests."""
        return {idx: self.counts[idx] for idx in sorted(self.counts)}

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.total:
            return "<Histogram empty>"
        return (
            f"<Histogram n={self.total} mean={self.mean():,.0f}cy "
            f"p99={self.percentile(99.0):,}cy>"
        )


class RequestRecord:
    """One request's lifecycle on the simulated clock.

    ``enqueue`` is when the request entered the system (arrival under
    an open-loop model, first send under a closed loop), ``start`` when
    service actually began, ``complete`` when the response was fully
    observed.  All three are integer sim-times; derived latencies are
    exact integer differences.
    """

    __slots__ = ("rid", "tenant", "enqueue", "start", "complete")

    def __init__(
        self,
        rid: int,
        tenant: Optional[str],
        enqueue: int,
        start: int,
        complete: int,
    ) -> None:
        self.rid = rid
        self.tenant = tenant
        self.enqueue = enqueue
        self.start = start
        self.complete = complete

    @property
    def latency(self) -> int:
        """Client-observed latency: enqueue -> complete."""
        return self.complete - self.enqueue

    @property
    def service(self) -> int:
        """Service time: start -> complete."""
        return self.complete - self.start

    @property
    def queue_delay(self) -> int:
        """Time spent waiting before service began."""
        return self.start - self.enqueue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f" {self.tenant}" if self.tenant else ""
        return (
            f"<Request #{self.rid}{who} q={self.queue_delay} "
            f"svc={self.service} lat={self.latency}>"
        )


class RequestCapture:
    """The one capture API every engine feeds request lifecycles through.

    Histogram-shaped state (bucket counts, exact sums) is recorded into
    the owning :class:`~repro.metrics.Metrics` tables, so it joins
    fast-forward fingerprints and scales exactly across skipped epochs.
    Full :class:`RequestRecord` retention (``keep_records=True``) is a
    debugging mode that observes *individual* requests — a macro-event
    would skip them, so record retention vetoes fast-forward (see
    ``Machine._ff_veto``), exactly like span tracing.
    """

    __slots__ = ("metrics", "series", "keep_records", "max_records",
                 "records", "evicted", "_next_rid")

    def __init__(
        self,
        metrics,
        series: str = "requests",
        keep_records: bool = False,
        max_records: int = 65536,
    ) -> None:
        self.metrics = metrics
        self.series = series
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[RequestRecord] = []
        #: Records not retained once ``max_records`` was reached; their
        #: latencies still land in the histogram tables.
        self.evicted = 0
        self._next_rid = 0

    def observe(
        self,
        enqueue: int,
        start: int,
        complete: int,
        tenant: Optional[str] = None,
        series: Optional[str] = None,
    ) -> int:
        """Record one completed request; returns its id."""
        rid = self._next_rid
        self._next_rid = rid + 1
        name = series if series is not None else self.series
        self.metrics.record_latency(name, complete - enqueue)
        if self.keep_records:
            if len(self.records) < self.max_records:
                self.records.append(
                    RequestRecord(rid, tenant, enqueue, start, complete)
                )
            else:
                self.evicted += 1
        return rid

    def histogram(self, series: Optional[str] = None) -> Histogram:
        """The captured latency histogram for ``series`` (default: this
        capture's own series), rebuilt from the Metrics tables."""
        return self.metrics.latency_histogram(
            series if series is not None else self.series
        )
