"""Span-level cycle attribution over the exit-dispatch boundary.

A :class:`Span` covers exactly one dispatch of one hardware exit: it
opens when the :class:`repro.hv.dispatch.ExitContext` is created at the
trap site and closes when L0 re-enters the guest.  Exits taken *by a
guest hypervisor's handler* while a span is open become child spans —
the span tree of a chain is the paper's exit multiplication, cycle by
cycle.

The collector aggregates closed spans two ways:

* per *site* — ``(origin level, exit reason, handler)`` → cycles, the
  trace-derived form of the Table-3 breakdowns;
* per *category* — the same categories :class:`repro.metrics.Metrics`
  charges (``hw_switch``, ``l0_emul``, ``dvh_emul``, ``ghv_handler``,
  ``guest_work``), which :meth:`SpanCollector.reconcile` checks against
  the flat counters.

Span state lives entirely outside :class:`~repro.metrics.Metrics`:
snapshots, fuzz digests, and every simulation result are identical
whether tracing is on or off.  When tracing is off (the default —
``machine.spans is None``) no span objects are ever allocated.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanCollector"]

#: Cycle categories dispatch charges; reconciliation always reports
#: these even when a run never touched one.
DISPATCH_CATEGORIES = (
    "hw_switch",
    "l0_emul",
    "dvh_emul",
    "ghv_handler",
    "guest_work",
)


class Span:
    """Cycles attributed to one dispatch of one exit."""

    __slots__ = (
        "chain_id",
        "level",
        "reason",
        "handler",
        "hops",
        "depth",
        "start",
        "end",
        "cycles",
        "children",
        "parent",
        "collector",
    )

    def __init__(
        self,
        chain_id: int,
        level: int,
        reason: str,
        depth: int,
        parent: Optional["Span"],
        start: int,
        collector: Optional["SpanCollector"] = None,
    ) -> None:
        self.chain_id = chain_id
        self.level = level
        self.reason = reason
        self.handler = ""
        self.hops = 0
        self.depth = depth
        self.start = start
        self.end: Optional[int] = None
        self.cycles: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.parent = parent
        self.collector = collector

    # ------------------------------------------------------------------
    def add(self, category: str, cycles: float) -> None:
        self.cycles[category] = self.cycles.get(category, 0) + cycles
        if self.collector is not None:
            # Category totals accumulate live (not at close) so chains
            # still in flight at drain time reconcile too.
            self.collector.by_category[category] += cycles

    def total(self) -> float:
        """Cycles charged in this span alone (children excluded)."""
        return sum(self.cycles.values())

    def subtree_total(self) -> float:
        """Cycles of this span plus every descendant."""
        return self.total() + sum(c.subtree_total() for c in self.children)

    def subtree_size(self) -> int:
        return 1 + sum(c.subtree_size() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span #{self.chain_id}.{self.depth} L{self.level} "
            f"{self.reason}->{self.handler or '?'} {self.total():,.0f}cy>"
        )


class SpanCollector:
    """Builds span trees and aggregates closed spans.

    ``max_chains`` bounds how many *root* spans (chains) are retained for
    tree rendering; aggregation is never truncated.
    """

    def __init__(self, sim, tracer=None, max_chains: int = 4096) -> None:
        self.sim = sim
        #: Optional :class:`repro.sim.trace.Tracer` that receives one
        #: ``span`` event per closed span (ordering-sensitive debugging).
        self.tracer = tracer
        self.enabled = True
        self.max_chains = max_chains
        self.roots: List[Span] = []
        #: Chains whose trees were not retained (beyond ``max_chains``);
        #: their cycles still land in the aggregates.
        self.chains_evicted = 0
        self.spans_opened = 0
        self.spans_closed = 0
        #: (level, reason, handler) -> cycles (own cycles, not subtree).
        self.by_site: Counter = Counter()
        #: category -> cycles across every span, open or closed (fed
        #: live by :meth:`Span.add` so in-flight chains reconcile too).
        self.by_category: Counter = Counter()

    # ------------------------------------------------------------------
    # Lifecycle (called from the dispatch path)
    # ------------------------------------------------------------------
    def open(self, ectx: Any) -> Span:
        parent = ectx.parent.span if ectx.parent is not None else None
        span = Span(
            chain_id=ectx.chain_id,
            level=ectx.origin_level,
            reason=ectx.exit_.reason._value_,
            depth=ectx.depth,
            parent=parent,
            start=self.sim.now,
            collector=self,
        )
        if parent is not None:
            parent.children.append(span)
        elif len(self.roots) < self.max_chains:
            self.roots.append(span)
        else:
            self.chains_evicted += 1
        self.spans_opened += 1
        return span

    def close(self, ectx: Any) -> None:
        span = ectx.span
        span.end = self.sim.now
        span.handler = ectx.handler
        span.hops = ectx.hops
        self.spans_closed += 1
        self.by_site[(span.level, span.reason, span.handler)] += span.total()
        if self.tracer is not None:
            self.tracer.emit(
                "span",
                chain=span.chain_id,
                depth=span.depth,
                level=span.level,
                reason=span.reason,
                handler=span.handler,
                hops=span.hops,
                cycles=round(span.total()),
            )

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def site_rows(self) -> List[Tuple[int, str, str, float]]:
        """(level, reason, handler, cycles) rows, most expensive first."""
        return sorted(
            ((lvl, reason, handler, cycles)
             for (lvl, reason, handler), cycles in self.by_site.items()),
            key=lambda row: (-row[3], row[0], row[1], row[2]),
        )

    def reconcile(self, metrics) -> List[Tuple[str, float, float, float]]:
        """Compare span-attributed cycles with the flat Metrics counters.

        Returns ``(category, span_cycles, metric_cycles, unattributed)``
        rows.  ``hw_switch`` and ``dvh_emul`` are charged only inside
        dispatch and reconcile exactly; ``l0_emul``, ``ghv_handler`` and
        ``guest_work`` also accrue on paths outside any dispatch (timer
        softirqs, posted-interrupt delivery from softirq context, backend
        worker loops), so their unattributed remainder is non-negative
        but not necessarily zero.
        """
        categories = sorted(set(self.by_category) | set(DISPATCH_CATEGORIES))
        rows = []
        for category in categories:
            span_cycles = self.by_category.get(category, 0)
            metric_cycles = metrics.cycles.get(category, 0)
            rows.append(
                (category, span_cycles, metric_cycles, metric_cycles - span_cycles)
            )
        return rows

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_chain(self, root: Span) -> str:
        lines = [
            f"chain #{root.chain_id}: {root.subtree_size()} spans, "
            f"{root.subtree_total():,.0f} cycles"
        ]

        def walk(span: Span, indent: int) -> None:
            breakdown = ", ".join(
                f"{cat}={cyc:,.0f}" for cat, cyc in sorted(span.cycles.items())
            )
            hops = f" hops={span.hops}" if span.hops else ""
            lines.append(
                f"{'  ' * indent}L{span.level} {span.reason} -> "
                f"{span.handler or '?'}{hops} [{breakdown}]"
            )
            for child in span.children:
                walk(child, indent + 1)

        walk(root, 1)
        return "\n".join(lines)

    def render_chains(self, last: Optional[int] = None) -> str:
        roots = self.roots if last is None else self.roots[-last:]
        out = [self.render_chain(root) for root in roots]
        if self.chains_evicted:
            out.append(f"({self.chains_evicted} chains not retained)")
        return "\n".join(out)
