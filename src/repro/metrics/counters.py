"""Exit counters and cycle attribution.

Every simulated machine owns one :class:`Metrics` object.  Hypervisor and
hardware code report exits, forwards, interrupts, and cycle charges here;
tests assert invariants on the counts (e.g. "a DVH virtual-timer program
from an L2 guest causes exactly one L0 exit and zero guest-hypervisor
interventions") and the benchmark harness uses them for the Figure-8-style
breakdowns.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.metrics.hist import bucket_index

__all__ = ["Metrics"]


class Metrics:
    """Counters for one simulation run."""

    #: Every counter table, in snapshot order.  ``snapshot``/``diff``/
    #: ``copy`` iterate this registry, so adding a table means adding it
    #: here (and ``test_metrics_tables`` fails if the registry and the
    #: instance attributes drift apart).
    _TABLES = (
        "exits",
        "forwards",
        "l0_handled",
        "dvh_handled",
        "interrupts",
        "cycles",
        "events",
        "faults",
        "recoveries",
        "cross_host",
        "latency",
        "latency_sum",
        "ooh",
    )

    def __init__(self) -> None:
        #: (from_level, reason_name) -> number of hardware exits to L0.
        self.exits: Counter = Counter()
        #: (from_level, reason_name, owner_level) -> exits forwarded to a
        #: guest hypervisor at ``owner_level``.
        self.forwards: Counter = Counter()
        #: reason_name -> exits handled directly by L0 (incl. DVH).
        self.l0_handled: Counter = Counter()
        #: reason_name -> exits handled by a DVH mechanism specifically.
        self.dvh_handled: Counter = Counter()
        #: (vector_kind, mode) -> interrupt deliveries
        #: (mode is "posted" or "injected").
        self.interrupts: Counter = Counter()
        #: category -> cycles charged (e.g. "hw_switch", "l0_emul",
        #: "ghv_handler", "guest_work", "vhost").
        self.cycles: Counter = Counter()
        #: free-form event counts (packets, transactions, migrations...).
        self.events: Counter = Counter()
        #: fault class -> injected faults (see repro.faults).
        self.faults: Counter = Counter()
        #: recovery kind -> successful recoveries (migration retries,
        #: virtio requeues, malformed-descriptor drops, DVH fallbacks...).
        self.recoveries: Counter = Counter()
        #: (src_host, dst_host, kind) -> bytes carried over the datacenter
        #: fabric (see repro.cluster.fabric); empty on single-machine runs.
        self.cross_host: Counter = Counter()
        #: (series, bucket_index) -> request count: the log-spaced
        #: latency histograms (see repro.metrics.hist).  Keyed per
        #: series (workload name, tenant name), integer counts only —
        #: so fast-forward fingerprints and ``apply_scaled`` cover them
        #: exactly, and per-host tables merge losslessly.
        self.latency: Counter = Counter()
        #: series -> exact integer sum of recorded latencies (cycles),
        #: so histogram means are byte-identical to raw-list means.
        self.latency_sum: Counter = Counter()
        #: (feature, "granted"|"forwarded") -> exits (or dirty-page
        #: batches) attributed to an OoH feature grant (see repro.ooh).
        self.ooh: Counter = Counter()
        #: Fast-forward float-charge log (see :meth:`ff_record`): None
        #: when off, else the (category, cycles) additions whose order
        #: matters for bit-exact replay.
        self._ff_log = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_exit(self, from_level: int, reason: str, count: int = 1) -> None:
        self.exits[(from_level, reason)] += count

    def record_forward(
        self, from_level: int, reason: str, owner_level: int, count: int = 1
    ) -> None:
        self.forwards[(from_level, reason, owner_level)] += count

    def record_l0_handled(self, reason: str, dvh: bool = False) -> None:
        self.l0_handled[reason] += 1
        if dvh:
            self.dvh_handled[reason] += 1

    def record_interrupt(self, kind: str, mode: str) -> None:
        self.interrupts[(kind, mode)] += 1

    def charge(self, category: str, cycles: float) -> None:
        total = self.cycles[category] + cycles
        self.cycles[category] = total
        log = self._ff_log
        if log is not None and (
            (total.__class__ is float and not total.is_integer())
            or (cycles.__class__ is float and not cycles.is_integer())
        ):
            # Non-integer float accumulation is order-sensitive (each +=
            # rounds); keep the addends so a macro-event can replay them
            # bit-for-bit.  Integer-valued growth is exact either way
            # and stays out of the log.
            if len(log) < 65536:
                log.append((category, cycles))
            else:  # runaway log (source stopped observing): give up
                self._ff_log = None

    # ------------------------------------------------------------------
    # Fast-forward float-replay log
    # ------------------------------------------------------------------
    def ff_record(self) -> None:
        """(Re)start logging order-sensitive float charges.  Driven by
        :class:`repro.sim.fastforward.PeriodicSource` while a fingerprint
        is being confirmed; the log is drained at every epoch-block
        boundary by :meth:`ff_take_log`."""
        self._ff_log = []

    def ff_stop(self) -> None:
        self._ff_log = None

    def ff_take_log(self) -> Optional[tuple]:
        """Drain the float-charge log accumulated since the last take
        (or since :meth:`ff_record`).  Returns None when logging is off
        or was abandoned (overflow)."""
        log = self._ff_log
        if log is None:
            return None
        self._ff_log = []
        return tuple(log)

    def count(self, name: str, n: int = 1) -> None:
        self.events[name] += n

    def record_fault(self, kind: str, n: int = 1) -> None:
        """An injected (or detected) fault of class ``kind``."""
        self.faults[kind] += n

    def record_recovery(self, kind: str, n: int = 1) -> None:
        """A successful recovery action of class ``kind``."""
        self.recoveries[kind] += n

    def record_latency(self, series: str, cycles: int, n: int = 1) -> None:
        """``n`` requests on ``series`` observed ``cycles`` latency.

        The bucket count and the exact sum are both plain integer
        Counter growth, so this table needs no special treatment
        anywhere: snapshots, diffs, fingerprints, and macro-event
        scaling all handle it like any other counter.
        """
        self.latency[(series, bucket_index(cycles))] += n
        self.latency_sum[series] += cycles * n

    def record_ooh(self, feature: str, granted: bool, n: int = 1) -> None:
        """``n`` exits (or dirty-page batches) for an OoH-grantable
        ``feature``, split by whether the grant short-circuited them."""
        self.ooh[(feature, "granted" if granted else "forwarded")] += n

    def record_cross_host(
        self, src: str, dst: str, kind: str, nbytes: int
    ) -> None:
        """``nbytes`` of ``kind`` traffic carried src -> dst over the
        cluster fabric (kind is "migration", "net", or "control")."""
        self.cross_host[(src, dst, kind)] += nbytes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_exits(self) -> int:
        """All hardware exits to L0."""
        return sum(self.exits.values())

    def exits_from_level(self, level: int) -> int:
        return sum(n for (lvl, _), n in self.exits.items() if lvl == level)

    def exits_for_reason(self, reason: str) -> int:
        return sum(n for (_, r), n in self.exits.items() if r == reason)

    def guest_hv_interventions(self) -> int:
        """Exits that had to be forwarded to any guest hypervisor — the
        quantity DVH is designed to eliminate (paper Section 3)."""
        return sum(self.forwards.values())

    def forwards_to_level(self, level: int) -> int:
        return sum(
            n for (_, _, owner), n in self.forwards.items() if owner == level
        )

    def total_faults(self) -> int:
        return sum(self.faults.values())

    def cross_host_bytes(self, kind: Optional[str] = None) -> int:
        """Bytes carried over the fabric, optionally for one traffic kind."""
        return sum(
            n
            for (_s, _d, k), n in self.cross_host.items()
            if kind is None or k == kind
        )

    def total_recoveries(self) -> int:
        return sum(self.recoveries.values())

    def ooh_split(self, feature: Optional[str] = None) -> tuple:
        """``(granted, forwarded)`` totals for one OoH feature (or all)."""
        granted = forwarded = 0
        for (f, mode), n in self.ooh.items():
            if feature is not None and f != feature:
                continue
            if mode == "granted":
                granted += n
            else:
                forwarded += n
        return granted, forwarded

    def latency_series(self) -> list:
        """Sorted names of every series with recorded latencies."""
        return sorted({series for (series, _idx) in self.latency})

    def latency_histogram(self, series: str):
        """Rebuild the :class:`repro.metrics.hist.Histogram` for one
        series from the counter tables (exact counts and sum)."""
        from repro.metrics.hist import Histogram

        return Histogram.from_buckets(
            (
                (idx, n)
                for (name, idx), n in self.latency.items()
                if name == series
            ),
            total_sum=self.latency_sum.get(series, 0),
        )

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict snapshot for reports."""
        return {table: dict(getattr(self, table)) for table in self._TABLES}

    def diff(self, earlier: "Metrics") -> "Metrics":
        """Counters accumulated since ``earlier`` (a copied snapshot).

        Only strictly positive deltas survive (Counter's unary ``+``):
        counters are monotonic, so a negative delta means ``earlier``
        is not actually an earlier snapshot of this object.
        """
        out = Metrics()
        for attr in self._TABLES:
            mine: Counter = getattr(self, attr)
            theirs: Counter = getattr(earlier, attr)
            result = Counter(mine)
            result.subtract(theirs)
            setattr(out, attr, +result)
        return out

    def copy(self) -> "Metrics":
        out = Metrics()
        for attr in self._TABLES:
            setattr(out, attr, Counter(getattr(self, attr)))
        return out

    def apply_scaled(
        self, delta: Dict[str, Dict], n: int, float_log: Optional[tuple] = None
    ) -> None:
        """Apply a per-epoch snapshot delta ``n`` times in one shot.

        This is the fast-forward macro-event accumulator: ``delta`` is the
        fingerprinted counter growth of one steady-state epoch (the
        ``{table: {key: growth}}`` shape produced by diffing two
        :meth:`snapshot` results), and applying it ``n``-fold must land on
        exactly the same counters ``n`` micro-stepped epochs would have.
        Integer growths are exact under scaling; cycle categories with
        order-sensitive float accumulation are replayed addition by
        addition from ``float_log`` (one epoch's :meth:`ff_take_log`
        output), so sums match bit-for-bit.
        """
        logged = {key for key, _ in float_log} if float_log else ()
        for table, entries in delta.items():
            counter: Counter = getattr(self, table)
            replay = logged if table == "cycles" else ()
            for key, grown in entries.items():
                if key in replay:
                    continue
                scaled = grown * n
                if scaled.__class__ is float:
                    # Float-typed but integer-valued growth (exact at
                    # counter magnitudes): repeated addition matches the
                    # micro path; multiplication might flip the type.
                    base = counter[key]
                    for _ in range(n):
                        base += grown
                    counter[key] = base
                else:
                    counter[key] += scaled
        if float_log:
            cycles = self.cycles
            for _ in range(n):
                for key, add in float_log:
                    cycles[key] += add
