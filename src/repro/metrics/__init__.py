"""Measurement: exit counters, cycle attribution, spans, and reports."""

from repro.metrics.counters import Metrics
from repro.metrics.spans import Span, SpanCollector

__all__ = ["Metrics", "Span", "SpanCollector"]
