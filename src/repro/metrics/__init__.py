"""Measurement: counters, histograms, request records, spans, reports."""

from repro.metrics.counters import Metrics
from repro.metrics.hist import (
    Histogram,
    RequestCapture,
    RequestRecord,
    exact_percentile,
)
from repro.metrics.spans import Span, SpanCollector

__all__ = [
    "Metrics",
    "Histogram",
    "RequestCapture",
    "RequestRecord",
    "exact_percentile",
    "Span",
    "SpanCollector",
]
