"""Measurement: exit counters, cycle attribution, and reports."""

from repro.metrics.counters import Metrics

__all__ = ["Metrics"]
