"""Human-readable reports over collected metrics.

These are the analysis views used throughout the paper's narrative: how
many exits an operation caused, how many reached a guest hypervisor, and
where the cycles went.  Used by the examples and handy in the REPL:

    >>> from repro.metrics.report import exit_report
    >>> print(exit_report(stack.metrics))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.counters import Metrics

__all__ = [
    "exit_report",
    "cycle_report",
    "interrupt_report",
    "fault_report",
    "intervention_summary",
    "latency_report",
    "simulator_report",
    "full_report",
]


def _table(header: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" if i == 0 else f"{{:>{w}}}" for i, w in enumerate(widths))
    lines = [fmt.format(*header), fmt.format(*["-" * w for w in widths])]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines)


def exit_report(metrics: Metrics) -> str:
    """Hardware exits broken down by source level and reason, with the
    share forwarded to guest hypervisors."""
    reasons = sorted({r for (_lvl, r) in metrics.exits})
    levels = sorted({lvl for (lvl, _r) in metrics.exits})
    rows = []
    for reason in reasons:
        row = [reason]
        for lvl in levels:
            row.append(str(metrics.exits.get((lvl, reason), 0)))
        forwarded = sum(
            n for (_l, r, _o), n in metrics.forwards.items() if r == reason
        )
        row.append(str(forwarded))
        rows.append(row)
    total_row = ["TOTAL"]
    for lvl in levels:
        total_row.append(str(metrics.exits_from_level(lvl)))
    total_row.append(str(metrics.guest_hv_interventions()))
    rows.append(total_row)
    header = ["exit reason"] + [f"from L{lvl}" for lvl in levels] + ["forwarded"]
    return "Hardware exits\n" + _table(header, rows)


def cycle_report(metrics: Metrics, freq_hz: Optional[int] = None) -> str:
    """Cycle attribution by category (guest work, L0 emulation, guest
    hypervisor handlers, vhost, DVH emulation...)."""
    total = sum(metrics.cycles.values()) or 1
    rows = []
    for category, cycles in sorted(metrics.cycles.items(), key=lambda kv: -kv[1]):
        row = [category, f"{cycles:,.0f}", f"{100 * cycles / total:5.1f}%"]
        if freq_hz:
            row.append(f"{cycles / freq_hz * 1e3:8.3f} ms")
        rows.append(row)
    header = ["category", "cycles", "share"] + (["time"] if freq_hz else [])
    return "Cycle attribution\n" + _table(header, rows)


def interrupt_report(metrics: Metrics) -> str:
    """Interrupt deliveries by kind and mode (posted vs injected) — the
    Figure 8 'posted interrupts' story in numbers."""
    rows = [
        [kind, mode, str(n)]
        for (kind, mode), n in sorted(metrics.interrupts.items())
    ]
    return "Interrupt deliveries\n" + _table(["kind", "mode", "count"], rows)


def fault_report(metrics: Metrics) -> str:
    """Injected faults vs successful recoveries (see repro.faults)."""
    rows = [
        ["fault", kind, str(n)] for kind, n in sorted(metrics.faults.items())
    ] + [
        ["recovery", kind, str(n)]
        for kind, n in sorted(metrics.recoveries.items())
    ]
    if not rows:
        rows = [["-", "(none)", "0"]]
    return "Faults and recoveries\n" + _table(["type", "class", "count"], rows)


def intervention_summary(metrics: Metrics) -> Dict[str, float]:
    """The headline numbers: exits, interventions, and the DVH share."""
    total = metrics.total_exits()
    interventions = metrics.guest_hv_interventions()
    dvh = sum(metrics.dvh_handled.values())
    return {
        "hardware_exits": total,
        "guest_hv_interventions": interventions,
        "dvh_handled": dvh,
        "intervention_ratio": interventions / total if total else 0.0,
    }


def latency_report(metrics: Metrics, freq_hz: Optional[int] = None) -> str:
    """Per-series request-latency percentiles from the histogram tables
    (see :mod:`repro.metrics.hist`).  Cycles always; microseconds too
    when ``freq_hz`` is known.  Empty-table safe: only series with at
    least one observation print."""
    rows = []
    for series in metrics.latency_series():
        hist = metrics.latency_histogram(series)
        if not hist.total:
            continue
        row = [
            series,
            f"{hist.total:,}",
            f"{hist.sum // hist.total:,}",
            f"{hist.percentile(50.0):,}",
            f"{hist.percentile(99.0):,}",
            f"{hist.percentile(99.9):,}",
        ]
        if freq_hz:
            row.append(f"{hist.percentile(99.0) / freq_hz * 1e6:9.2f} us")
        rows.append(row)
    if not rows:
        return "Request latency\n(no latency observations)"
    header = ["series", "count", "mean cy", "p50 cy", "p99 cy", "p99.9 cy"]
    if freq_hz:
        header.append("p99")
    return "Request latency (histogram buckets, <=3.2% wide)\n" + _table(
        header, rows
    )


def simulator_report(sim) -> str:
    """Engine cost of the run: events executed, the ready/heap/inline
    scheduling split, and host-side throughput (``Simulator.stats()``)."""
    s = sim.stats()
    rows = [
        ["events executed", f"{s['events_executed']:,.0f}"],
        ["ready-queue hits", f"{s['ready_hits']:,.0f}"],
        ["heap hits", f"{s['heap_hits']:,.0f}"],
        ["inline advances", f"{s['inline_hits']:,.0f}"],
        ["last run events", f"{s['last_run_events']:,.0f}"],
        ["last run host wall", f"{s['last_run_wall_s'] * 1e3:,.2f} ms"],
        ["last run events/sec", f"{s['last_run_events_per_sec']:,.0f}"],
    ]
    # Fast-forward accounting: skipped work must never be silently
    # unobservable, so the macro-event counters always print when the
    # mechanism is compiled in (even all-zero with it disabled).
    if "ff_enabled" in s:
        rows += [
            ["fast-forward", "on" if s["ff_enabled"] else "off"],
            ["ff epochs observed", f"{s['ff_epochs_observed']:,.0f}"],
            ["ff detections", f"{s['ff_detections']:,.0f}"],
            ["ff epochs skipped", f"{s['ff_epochs_skipped']:,.0f}"],
            ["ff macro-events", f"{s['ff_macro_events']:,.0f}"],
            ["ff window-blocked", f"{s['ff_window_blocked']:,.0f}"],
        ]
        for cause, n in sorted(s.get("ff_invalidations", {}).items()):
            rows.append([f"ff invalidated: {cause}", f"{n:,.0f}"])
    return "Simulator cost (host-side)\n" + _table(["counter", "value"], rows)


def full_report(metrics: Metrics, freq_hz: Optional[int] = None, sim=None) -> str:
    """Everything, for dropping at the end of an experiment."""
    parts = [exit_report(metrics), "", cycle_report(metrics, freq_hz)]
    if metrics.latency:
        parts += ["", latency_report(metrics, freq_hz)]
    if metrics.interrupts:
        parts += ["", interrupt_report(metrics)]
    if metrics.faults or metrics.recoveries:
        parts += ["", fault_report(metrics)]
    if sim is not None:
        parts += ["", simulator_report(sim)]
    summary = intervention_summary(metrics)
    parts += [
        "",
        (
            f"{summary['hardware_exits']:,} exits, "
            f"{summary['guest_hv_interventions']:,} guest-hypervisor "
            f"interventions ({summary['intervention_ratio']:.1%}), "
            f"{summary['dvh_handled']:,} handled by DVH"
        ),
    ]
    return "\n".join(parts)
