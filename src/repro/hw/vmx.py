"""VMX structures: VMCS, execution controls, capability MSRs, shadowing.

Only the host hypervisor (L0) drives the (simulated) hardware VMX; guest
hypervisors keep their own vmcs12 structures, which L0 merges into the
hardware VMCS when emulating VMRESUME — exactly the single-level hardware
model the paper describes in Section 2.

DVH virtual hardware (Sections 3.2-3.4) plugs in here: the paper adds one
bit per mechanism to the VMX *capability* MSR (discovery) and one to the
VM-execution controls (enablement), visible to both guest and host
hypervisors.  Those bits are first-class fields below.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Set, Tuple

__all__ = [
    "VmcsField",
    "VmxCapability",
    "ExecControl",
    "Vmcs",
    "SHADOWED_FIELDS",
    "VCIMT_ENTRY_SIZE",
]

#: Bytes per virtual-CPU-interrupt-mapping-table entry (§3.3: vCPU number
#: -> posted-interrupt descriptor).  Part of the DVH virtual-hardware
#: interface definition.
VCIMT_ENTRY_SIZE = 16


class VmcsField(enum.Enum):
    """VMCS fields the simulation models (subset of the Intel SDM set)."""

    # Guest state
    GUEST_RIP = "guest_rip"
    GUEST_RSP = "guest_rsp"
    GUEST_CR3 = "guest_cr3"
    GUEST_INTERRUPTIBILITY = "guest_interruptibility"
    GUEST_ACTIVITY_STATE = "guest_activity_state"
    # Host state
    HOST_RIP = "host_rip"
    HOST_CR3 = "host_cr3"
    # Controls
    PIN_CONTROLS = "pin_controls"
    PROC_CONTROLS = "proc_controls"
    PROC_CONTROLS2 = "proc_controls2"
    EXCEPTION_BITMAP = "exception_bitmap"
    TSC_OFFSET = "tsc_offset"
    EPT_POINTER = "ept_pointer"
    MSR_BITMAP = "msr_bitmap"
    POSTED_INTR_DESC_ADDR = "posted_intr_desc_addr"
    POSTED_INTR_VECTOR = "posted_intr_vector"
    VMCS_LINK_POINTER = "vmcs_link_pointer"
    PREEMPTION_TIMER_VALUE = "preemption_timer_value"
    # Exit information
    EXIT_REASON = "exit_reason"
    EXIT_QUALIFICATION = "exit_qualification"
    EXIT_GUEST_PHYS_ADDR = "exit_guest_phys_addr"
    EXIT_INSTRUCTION_LEN = "exit_instruction_len"
    EXIT_INTR_INFO = "exit_intr_info"
    ENTRY_INTR_INFO = "entry_intr_info"
    # DVH virtual hardware (paper Sections 3.2, 3.3)
    VIRTUAL_TIMER_DEADLINE = "virtual_timer_deadline"
    VIRTUAL_TIMER_VECTOR = "virtual_timer_vector"
    VCIMTAR = "vcimtar"  # virtual CPU interrupt mapping table address


#: Fields covered by hardware VMCS shadowing: the guest hypervisor can
#: VMREAD/VMWRITE these without trapping (Intel VMCS Shadowing whitepaper;
#: exit-information and frequently-accessed guest-state fields).
SHADOWED_FIELDS: FrozenSet[VmcsField] = frozenset(
    {
        VmcsField.GUEST_RIP,
        VmcsField.GUEST_RSP,
        VmcsField.GUEST_INTERRUPTIBILITY,
        VmcsField.EXIT_REASON,
        VmcsField.EXIT_QUALIFICATION,
        VmcsField.EXIT_GUEST_PHYS_ADDR,
        VmcsField.EXIT_INSTRUCTION_LEN,
        VmcsField.EXIT_INTR_INFO,
    }
)


@dataclass
class VmxCapability:
    """The VMX capability MSR a hypervisor exposes to a guest hypervisor.

    ``virtual_timer`` / ``virtual_ipi`` are the DVH discovery bits the
    paper adds ("we add one bit in the VMX capability register", §3.2/§3.3).
    """

    vmx: bool = True
    ept: bool = True
    vmcs_shadowing: bool = True
    apicv: bool = True
    posted_interrupts: bool = True
    preemption_timer: bool = True
    # --- DVH capability bits ---
    virtual_timer: bool = False
    virtual_ipi: bool = False
    # --- OoH grant discovery bits (repro.ooh) ---
    #: Feature grants the level below exposes to this hypervisor: the
    #: guest hypervisor discovers granted features here and programs the
    #: real virtual feature instead of emulating.
    ooh_grants: Tuple[str, ...] = ()

    def copy(self) -> "VmxCapability":
        return VmxCapability(**self.__dict__)


@dataclass
class ExecControl:
    """VM-execution controls (the subset that drives routing decisions).

    ``virtual_timer_enable`` / ``virtual_ipi_enable`` are the DVH enable
    bits ("one [bit] in the VM execution control register", §3.2/§3.3).
    ``hlt_exiting`` is the existing control virtual idle manipulates
    (§3.4).
    """

    hlt_exiting: bool = True
    use_msr_bitmap: bool = True
    ept_enable: bool = True
    shadow_vmcs: bool = False
    apicv: bool = False
    posted_interrupts: bool = False
    # --- DVH enable bits ---
    virtual_timer_enable: bool = False
    virtual_ipi_enable: bool = False

    def copy(self) -> "ExecControl":
        return ExecControl(**self.__dict__)


class Vmcs:
    """One virtual-machine control structure.

    Instances play three roles:

    * ``vmcs01`` — L0's control structure for an L1 vCPU;
    * ``vmcs12`` — a guest hypervisor's structure for *its* guest, kept in
      guest memory and emulated by the level below;
    * ``vmcs0n`` — the merged structure L0 actually runs a nested vCPU
      with (produced by :meth:`merge_from`).
    """

    _next_id = 1

    def __init__(self, owner_level: int, name: str = "") -> None:
        #: Virtualization level of the hypervisor that owns this VMCS
        #: (0 = host hypervisor).
        self.owner_level = owner_level
        self.name = name or f"vmcs{Vmcs._next_id}"
        Vmcs._next_id += 1
        self.fields: Dict[VmcsField, Any] = {f: 0 for f in VmcsField}
        self.controls = ExecControl()
        #: Shadow VMCS linkage: when set and shadowing is enabled for the
        #: guest hypervisor, reads/writes of SHADOWED_FIELDS don't trap.
        self.shadow: Optional["Vmcs"] = None
        #: Set of vCPUs launched from this VMCS (bookkeeping).
        self.launched = False
        #: TSC offset between this VMCS's owner and its immediate guest;
        #: the merged TSC_OFFSET field adds the guest hypervisor's own
        #: offset on top of this (see merge_from).
        self._base_tsc_offset = 0

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------
    def read(self, fieldname: VmcsField) -> Any:
        return self.fields[fieldname]

    def write(self, fieldname: VmcsField, value: Any) -> None:
        self.fields[fieldname] = value

    # ------------------------------------------------------------------
    # Merge (emulated VMRESUME: vmcs12 -> vmcs02)
    # ------------------------------------------------------------------
    def merge_from(self, vmcs12: "Vmcs", host_controls: ExecControl) -> None:
        """Combine a guest hypervisor's vmcs12 with host controls into
        this (merged) VMCS, the core of emulated nested VM entry.

        Guest-state fields come from vmcs12.  Control bits combine so that
        the host hypervisor retains control: a trap is taken if *either*
        level wants it — except where DVH deliberately clears guest-level
        traps (virtual idle, §3.4).  TSC offsets add (§3.2).
        """
        for f in (
            VmcsField.GUEST_RIP,
            VmcsField.GUEST_RSP,
            VmcsField.GUEST_CR3,
            VmcsField.GUEST_INTERRUPTIBILITY,
            VmcsField.POSTED_INTR_DESC_ADDR,
            VmcsField.POSTED_INTR_VECTOR,
            VmcsField.VIRTUAL_TIMER_VECTOR,
            VmcsField.VCIMTAR,
        ):
            self.fields[f] = vmcs12.fields[f]
        # Combined TSC offset: host-provided base plus the guest
        # hypervisor's offset for its guest (paper §3.2: "accesses the
        # timer offset the guest hypervisor programmed to a VMCS, combines
        # it with time difference between itself and the guest
        # hypervisor").
        self.fields[VmcsField.TSC_OFFSET] = (
            vmcs12.fields[VmcsField.TSC_OFFSET] + self._base_tsc_offset
        )
        ctl = ExecControl()
        ctl.hlt_exiting = vmcs12.controls.hlt_exiting or host_controls.hlt_exiting
        ctl.use_msr_bitmap = True
        ctl.ept_enable = True
        ctl.shadow_vmcs = vmcs12.controls.shadow_vmcs
        ctl.apicv = vmcs12.controls.apicv and host_controls.apicv
        ctl.posted_interrupts = (
            vmcs12.controls.posted_interrupts and host_controls.posted_interrupts
        )
        ctl.virtual_timer_enable = vmcs12.controls.virtual_timer_enable
        ctl.virtual_ipi_enable = vmcs12.controls.virtual_ipi_enable
        self.controls = ctl

    def set_base_tsc_offset(self, offset: int) -> None:
        """The offset between this VMCS's owner and its guest."""
        self._base_tsc_offset = offset
        self.fields[VmcsField.TSC_OFFSET] = offset

    @property
    def base_tsc_offset(self) -> int:
        return self._base_tsc_offset

    def is_shadowed(self, fieldname: VmcsField) -> bool:
        """Whether a guest hypervisor's access to ``fieldname`` on this
        vmcs12 is absorbed by VMCS shadowing (no trap)."""
        return self.controls.shadow_vmcs and fieldname in SHADOWED_FIELDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Vmcs {self.name} owner=L{self.owner_level}>"
