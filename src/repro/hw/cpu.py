"""Physical CPUs and the execution-context interface guest code runs on.

Workloads and guest-hypervisor handlers are written against
:class:`ExecutionContext`; the two implementations are
:class:`NativeContext` (bare-metal, for the paper's native baseline — no
operation ever traps) and :class:`repro.hv.vm.VCpu` (a virtual CPU at any
virtualization level, where privileged operations take the full trap path
through the host hypervisor).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.hw.lapic import Lapic, TIMER_VECTOR
from repro.hw.ops import Op

__all__ = ["PhysicalCpu", "ExecutionContext", "NativeContext"]


class PhysicalCpu:
    """One physical CPU: timebase, LAPIC, and halt/wake bookkeeping."""

    def __init__(self, idx: int, sim, tsc_boot_offset: int = 0) -> None:
        self.idx = idx
        self.sim = sim
        self.lapic = Lapic(apic_id=idx)
        self.tsc_boot_offset = tsc_boot_offset
        #: Event the CPU's thread blocks on while halted (None = running).
        self._halt_event = None
        #: Set when a wake arrived while the CPU was not yet halted (an
        #: interrupt racing the idle chain's descent): the next block()
        #: returns immediately instead of losing the wakeup, mirroring
        #: hardware's interrupt-window check before HLT completes.
        self._wake_pending = False
        #: The leaf vCPU currently executing on this CPU (None when the
        #: CPU runs host code or is idle).  Used by posted-interrupt
        #: delivery to decide between exit-less delivery and wakeup.
        self.running_vcpu: Optional[Any] = None

    @property
    def tsc(self) -> int:
        """Host timestamp counter."""
        return self.sim.now + self.tsc_boot_offset

    @property
    def halted(self) -> bool:
        return self._halt_event is not None

    def block(self):
        """Enter halt; returns the event to yield on.

        If a wake raced the descent into halt, returns an
        already-triggered event (no sleep)."""
        if self._halt_event is not None:
            raise RuntimeError(f"pcpu{self.idx} already halted")
        ev = self.sim.event(f"pcpu{self.idx}.halt")
        if self._wake_pending:
            self._wake_pending = False
            ev.trigger()
            return ev
        self._halt_event = ev
        return ev

    def wake(self) -> bool:
        """Leave halt; returns True if the CPU was actually halted.
        A wake of a running CPU is latched so the next halt attempt
        returns immediately (see block)."""
        ev = self._halt_event
        if ev is None:
            self._wake_pending = True
            return False
        self._halt_event = None
        ev.trigger()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<pcpu{self.idx}{' halted' if self.halted else ''}>"


class ExecutionContext:
    """What guest code sees: compute, privileged ops, timers, IPIs, idle.

    All methods that consume simulated time are generators to be driven
    with ``yield from``.
    """

    #: Virtualization level: 0 = bare metal, 1 = L1 guest, 2 = nested...
    level: int = 0
    name: str = "ctx"
    lapic: Lapic
    #: The live trap frame (repro.hv.dispatch.ExitContext) whose handler
    #: this context is currently executing, or None outside any dispatch.
    #: Set/restored by the forwarding path around guest-hypervisor handler
    #: invocation; privileged operations executed while it is set trap
    #: into *child* frames of the same exit chain (exit multiplication).
    exit_context: Optional[Any] = None

    def compute(self, cycles: int) -> Generator:
        """Unprivileged guest work."""
        raise NotImplementedError

    def execute(self, op: Op, count: int = 1, **info: Any) -> Generator:
        """Execute a privileged operation (may trap)."""
        raise NotImplementedError

    def mem_write(self, addr: int, size: int) -> None:
        """Plain guest memory write (no trap; feeds dirty tracking)."""
        raise NotImplementedError

    def read_tsc(self) -> int:
        """Guest-visible TSC (hardware applies VMCS offsets, no trap)."""
        raise NotImplementedError

    def program_timer(self, deadline_tsc: int, vector: int = TIMER_VECTOR) -> Generator:
        """Arm the LAPIC TSC-deadline timer (WRMSR — traps in a VM)."""
        raise NotImplementedError

    def send_ipi(self, dest_index: int, vector: int) -> Generator:
        """Write the ICR to interrupt a sibling CPU (traps in a VM)."""
        raise NotImplementedError

    def wait_for_interrupt(self) -> Generator:
        """HLT until an interrupt is pending; acks and returns the vector."""
        raise NotImplementedError

    def irq_work(self) -> Generator:
        """Guest IRQ entry/dispatch/EOI software path."""
        raise NotImplementedError


class NativeContext(ExecutionContext):
    """Bare-metal execution for the native baseline configuration."""

    level = 0

    #: Cycles for a native privileged register write (no trap).
    NATIVE_OP_COST = 40

    def __init__(self, machine, cpu: PhysicalCpu, index: int, name: str = "") -> None:
        self.machine = machine
        self.cpu = cpu
        self.index = index
        self.name = name or f"native{index}"
        self.lapic = cpu.lapic
        self.memory = machine.memory
        #: Armed LAPIC-timer handle; cancelled on reprogram so stale
        #: arms never block a fast-forward window.
        self._timer_handle = None

    @property
    def pcpu(self) -> PhysicalCpu:
        """Alias so workload engines can treat native contexts and vCPUs
        uniformly."""
        return self.cpu

    # ------------------------------------------------------------------
    def compute(self, cycles: int) -> Generator:
        self.machine.metrics.charge("guest_work", cycles)
        yield cycles

    def execute(self, op: Op, count: int = 1, **info: Any) -> Generator:
        # Nothing traps on bare metal.
        yield self.NATIVE_OP_COST * count

    def mem_write(self, addr: int, size: int) -> None:
        self.memory.write_range(addr, size)

    def read_tsc(self) -> int:
        return self.cpu.tsc

    def program_timer(self, deadline_tsc: int, vector: int = TIMER_VECTOR) -> Generator:
        self.lapic.arm_timer(deadline_tsc, vector)
        delay = max(0, deadline_tsc - self.cpu.tsc)
        lapic = self.lapic
        cpu = self.cpu
        stale = self._timer_handle
        if stale is not None:
            stale.cancel()

        def fire() -> None:
            if lapic.timer_deadline is not None and lapic.timer_deadline <= cpu.tsc:
                lapic.fire_timer()
                cpu.wake()

        sim = self.machine.sim
        self._timer_handle = sim.timer_at(sim.now + delay, fire)
        yield self.NATIVE_OP_COST

    def send_ipi(self, dest_index: int, vector: int) -> Generator:
        yield self.machine.costs.physical_ipi
        self.machine.deliver_native_interrupt(dest_index, vector)

    def wait_for_interrupt(self) -> Generator:
        while not self.lapic.has_pending():
            ev = self.cpu.block()
            yield ev
        # Native wake path: idle-exit latency is small but nonzero.
        yield self.machine.costs.halt_wake_sched // 4
        return self.lapic.ack()

    def irq_work(self) -> Generator:
        self.machine.metrics.charge("guest_work", self.machine.costs.guest_irq_entry)
        yield self.machine.costs.guest_irq_entry
        self.lapic.eoi()
