"""Posted-interrupt descriptors (Intel APICv / VT-d posted interrupts).

A PI descriptor lets an agent (another CPU, a device, or — with DVH — the
host hypervisor on behalf of a nested VM) deliver an interrupt to a running
vCPU without causing a VM exit: set the vector bit in the PIR, set the ON
bit, and send the notification vector to the physical CPU running the
target vCPU; hardware then syncs the PIR into the virtual APIC's IRR
(paper Sections 3.2-3.3, Figures 4-5).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.hw.lapic import Lapic, POSTED_INTR_NOTIFICATION_VECTOR

__all__ = ["PiDescriptor"]


class PiDescriptor:
    """One posted-interrupt descriptor (per vCPU)."""

    def __init__(self, owner_name: str = "") -> None:
        self.owner_name = owner_name
        #: Posted-interrupt requests (vector bitmap).
        self.pir: Set[int] = set()
        #: Outstanding notification bit.
        self.on = False
        #: Suppress notification (vCPU not running; deliver lazily).
        self.sn = False
        self.notification_vector = POSTED_INTR_NOTIFICATION_VECTOR
        #: Physical CPU currently running the target vCPU (None = not
        #: running).  Updated by the scheduler / VM entry-exit code.
        self.dest_pcpu: Optional[int] = None

    def post(self, vector: int) -> bool:
        """Record a pending vector.  Returns True if a notification IPI is
        needed (ON transitioned from clear to set and not suppressed)."""
        if not 0 <= vector <= 0xFF:
            raise ValueError(f"bad vector {vector}")
        self.pir.add(vector)
        if self.on or self.sn:
            return False
        self.on = True
        return True

    def sync_to(self, lapic: Lapic) -> int:
        """Hardware sync on notification / VM entry: PIR -> IRR.
        Returns the number of vectors moved."""
        moved = len(self.pir)
        for vector in self.pir:
            lapic.set_irr(vector)
        self.pir.clear()
        self.on = False
        return moved

    @property
    def has_pending(self) -> bool:
        return bool(self.pir)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PiDescriptor {self.owner_name} pir={sorted(self.pir)} "
            f"on={self.on} pcpu={self.dest_pcpu}>"
        )
