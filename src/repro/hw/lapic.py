"""Local APIC model: pending-interrupt state, TSC-deadline timer, ICR.

Each vCPU (and each physical CPU) owns a :class:`Lapic`.  Interrupt
*routing* policy (who traps, who posts) lives in the hypervisor layer;
the LAPIC just models architectural state: the IRR/ISR vector registers,
the one-shot TSC-deadline timer, and EOI.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

__all__ = ["Lapic", "TIMER_VECTOR", "IPI_RESCHEDULE_VECTOR", "VIRTIO_VECTOR_BASE"]

#: Conventional vector assignments used by the simulated guests.
TIMER_VECTOR = 0xEC
IPI_RESCHEDULE_VECTOR = 0xFD
IPI_CALL_FUNCTION_VECTOR = 0xFB
VIRTIO_VECTOR_BASE = 0x40
POSTED_INTR_NOTIFICATION_VECTOR = 0xF2


class Lapic:
    """Architectural local-APIC state for one (v/p)CPU."""

    def __init__(self, apic_id: int) -> None:
        self.apic_id = apic_id
        #: Interrupt request register: pending vectors.
        self.irr: Set[int] = set()
        #: In-service register: vectors being serviced (until EOI).
        self.isr: List[int] = []
        #: Armed TSC-deadline (in the owner's TSC domain), or None.
        self.timer_deadline: Optional[int] = None
        self.timer_vector: int = TIMER_VECTOR
        #: Observers called on IRR becoming non-empty (wakeups).
        self._wake_callbacks: List[Callable[[], None]] = []
        #: Fault-injection hook (see repro.faults): called with the
        #: vector being latched; returning True swallows the interrupt
        #: (a dropped interrupt).  Spurious interrupts are injected by
        #: calling :meth:`set_irr` directly.
        self.fault_hook: Optional[Callable[[int], bool]] = None

    # ------------------------------------------------------------------
    # Interrupt state
    # ------------------------------------------------------------------
    def set_irr(self, vector: int) -> None:
        """Latch a pending interrupt."""
        if not 0 <= vector <= 0xFF:
            raise ValueError(f"bad vector {vector}")
        if self.fault_hook is not None and self.fault_hook(vector):
            return  # interrupt dropped in flight
        self.irr.add(vector)
        for cb in list(self._wake_callbacks):
            cb()

    def has_pending(self) -> bool:
        return bool(self.irr)

    def ack(self) -> Optional[int]:
        """Deliver the highest-priority pending vector (IRR -> ISR)."""
        if not self.irr:
            return None
        vector = max(self.irr)
        self.irr.discard(vector)
        self.isr.append(vector)
        return vector

    def eoi(self) -> Optional[int]:
        """End-of-interrupt for the most recent in-service vector."""
        if self.isr:
            return self.isr.pop()
        return None

    def on_wake(self, cb: Callable[[], None]) -> None:
        """Register a wake observer (hypervisor halt/wake machinery)."""
        self._wake_callbacks.append(cb)

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------
    def arm_timer(self, deadline_tsc: int, vector: int = TIMER_VECTOR) -> None:
        self.timer_deadline = deadline_tsc
        self.timer_vector = vector

    def disarm_timer(self) -> None:
        self.timer_deadline = None

    def fire_timer(self) -> None:
        """The armed deadline elapsed: latch the timer vector."""
        self.timer_deadline = None
        self.set_irr(self.timer_vector)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Lapic {self.apic_id} irr={sorted(self.irr)}>"
