"""The physical machine: CPUs, memory, IOMMU, PCI bus, NIC, SSD, client.

One :class:`Machine` models one testbed server (paper §4: two 10-core
2.2 GHz Xeon Silver 4114 CPUs with hyperthreading disabled, 192 GB RAM,
an Intel DC S3500 SSD and a dual-port Intel X520 10 Gb NIC), plus the
wire to the dedicated client machine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.cpu import NativeContext, PhysicalCpu
from repro.hw.devices.block import SsdDevice
from repro.hw.devices.nic import PhysicalNic, RemoteClient, Wire
from repro.hw.iommu import Iommu
from repro.hw.mem import MemorySpace
from repro.hw.pci import PciBus
from repro.metrics import Metrics
from repro.sim import CostModel, Simulator, default_costs

__all__ = ["Machine"]

MB = 1 << 20
GB = 1 << 30


class Machine:
    """A simulated server with its devices and its remote client."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        costs: Optional[CostModel] = None,
        num_cpus: int = 20,
        memory_bytes: int = 192 * GB,
        seed: int = 0,
        fast_forward: Optional[bool] = None,
    ) -> None:
        self.sim = (
            sim
            if sim is not None
            else Simulator(seed=seed, fast_forward=fast_forward)
        )
        self.costs = costs if costs is not None else default_costs()
        self.metrics = Metrics()
        self.memory = MemorySpace(memory_bytes, name="host-ram")
        # Stagger TSC boot offsets deterministically; software must get the
        # offset arithmetic right for cross-CPU timer tests to pass.
        self.cpus: List[PhysicalCpu] = [
            PhysicalCpu(i, self.sim, tsc_boot_offset=i * 7) for i in range(num_cpus)
        ]
        self.iommu = Iommu(name="vt-d")
        self.bus = PciBus("host-pci")
        #: Set by the stack builder: the host hypervisor (L0) and the full
        #: hypervisor stack [L0, L1-hv, ...] for nested configurations.
        self.host_hv = None
        self.hv_stack: list = []
        #: Attached fault injector (see repro.faults), or None for a
        #: fault-free machine.  Consulted by the migration wire.
        self.faults = None
        #: OoH grant table (see repro.ooh), or None = no grants
        #: configured.  Consulted by exit routing (grant gates) and the
        #: migration dirty-tracking pricing; None keeps both paths
        #: byte-identical to a build without the feature.
        self.ooh = None
        #: Attached runtime invariant auditor (see repro.audit), or None
        #: = auditing off.  Instrumented sites (live migration) consult
        #: it through ``getattr``-style None guards, so an un-audited
        #: run is byte-identical to one built without the hooks.
        self.audit = None
        #: Monotonic exit-chain id allocator (see repro.hv.dispatch): a
        #: root trap frame gets a fresh chain id, every exit its handlers
        #: cause inherits it.
        self._next_chain_id = 0
        #: Span collector (repro.metrics.spans), or None = tracing off.
        #: Kept off the Metrics object so snapshots and fuzz digests are
        #: identical with tracing on or off.
        self.spans = None
        #: Per-chain exit accounting hook (repro.faults.chains), or None.
        self.chain_tracker = None
        #: Request-lifecycle capture (repro.metrics.hist), or None =
        #: capture off.  Engines guard every observation with a None
        #: check, so the off path allocates nothing — same contract as
        #: spans.  Histogram-only capture writes integer counter tables
        #: and stays fast-forward friendly; retaining individual
        #: records vetoes skipping (see :meth:`_ff_veto`).
        self.request_capture = None
        #: Live migrations in flight on this machine.  While non-zero,
        #: workload fast-forward is vetoed: skipping epochs would lose
        #: the re-dirty records the attached dirty logs must observe.
        self.ff_migrations = 0
        self.wire = Wire(self.sim, self.costs.nic_bps, self.costs.wire_latency)
        self.nic: PhysicalNic = self.bus.plug(PhysicalNic("eth0", self.wire))
        self.ssd: SsdDevice = self.bus.plug(SsdDevice("ssd0", self.sim, self.costs))
        self.client = RemoteClient(self.sim, self.wire, self.nic, self.costs)
        # Fast-forward: this machine's counters join every epoch
        # fingerprint, and any attached observer (auditor, fault
        # injector, span tracer, chain tracker) vetoes skipping — those
        # hooks watch mid-epoch state a macro-event would hide.
        self.sim.ff.register_metrics(self.metrics)
        self.sim.ff.add_veto(self._ff_veto)

    def _ff_veto(self) -> Optional[str]:
        if self.audit is not None:
            return "audit"
        if self.faults is not None:
            return "faults"
        if self.spans is not None:
            return "spans"
        if self.chain_tracker is not None:
            return "chain_tracker"
        if self.ff_migrations:
            return "migration"
        capture = self.request_capture
        if capture is not None and capture.keep_records:
            # Histogram-only capture rides the fingerprinted counter
            # tables and scales exactly across skipped epochs; full
            # per-request records would miss every skipped request.
            return "request_records"
        return None

    # ------------------------------------------------------------------
    # Native execution (the baseline configuration)
    # ------------------------------------------------------------------
    def native_contexts(self, count: int = 4) -> List[NativeContext]:
        """Bare-metal execution contexts for the native baseline (the
        paper's native config uses 4 cores)."""
        if count > len(self.cpus):
            raise ValueError("not enough physical CPUs")
        return [NativeContext(self, self.cpus[i], i) for i in range(count)]

    def deliver_native_interrupt(self, cpu_index: int, vector: int) -> None:
        """Latch an interrupt on a physical CPU's LAPIC and wake it."""
        cpu = self.cpus[cpu_index]
        cpu.lapic.set_irr(vector)
        self.metrics.record_interrupt("native", "direct")
        cpu.wake()

    def cpu(self, idx: int) -> PhysicalCpu:
        return self.cpus[idx]

    # ------------------------------------------------------------------
    # Exit chains and span tracing
    # ------------------------------------------------------------------
    def new_chain_id(self) -> int:
        """Allocate the id for a new exit chain (root trap frame)."""
        self._next_chain_id += 1
        return self._next_chain_id

    def enable_span_tracing(self, tracer=None, max_chains: int = 4096):
        """Turn on span-level cycle attribution for this machine.

        Returns the :class:`repro.metrics.spans.SpanCollector`.  Tracing
        changes nothing observable about the simulation — only what is
        *recorded* about it."""
        from repro.metrics.spans import SpanCollector

        self.spans = SpanCollector(self.sim, tracer=tracer, max_chains=max_chains)
        return self.spans

    def enable_request_capture(
        self,
        series: str = "requests",
        keep_records: bool = False,
        max_records: int = 65536,
    ):
        """Turn on per-request latency capture for this machine.

        Returns the :class:`repro.metrics.hist.RequestCapture`.  With
        the default ``keep_records=False`` only integer histogram
        tables are written — deterministic, mergeable, and exact under
        fast-forward.  ``keep_records=True`` additionally retains full
        :class:`~repro.metrics.hist.RequestRecord` objects (bounded by
        ``max_records``) and vetoes fast-forward while enabled."""
        from repro.metrics.hist import RequestCapture

        self.request_capture = RequestCapture(
            self.metrics,
            series=series,
            keep_records=keep_records,
            max_records=max_records,
        )
        return self.request_capture

    @property
    def freq_hz(self) -> int:
        return self.sim.freq_hz
