"""Simulated x86 hardware: CPUs, VMX, EPT, APIC, IOMMU, PCI, devices."""

from repro.hw.cpu import ExecutionContext, NativeContext, PhysicalCpu
from repro.hw.ept import EptViolation, PageTable, Perm, compose
from repro.hw.iommu import Iommu, IommuFault, Irte, IrteMode
from repro.hw.lapic import Lapic, TIMER_VECTOR
from repro.hw.machine import Machine
from repro.hw.mem import PAGE_SIZE, DirtyLog, MemorySpace
from repro.hw.ops import Exit, ExitReason, Op
from repro.hw.pci import Bar, Capability, CapabilityId, PciBus, PciDevice
from repro.hw.posted import PiDescriptor
from repro.hw.vmx import SHADOWED_FIELDS, ExecControl, Vmcs, VmcsField, VmxCapability

__all__ = [
    "ExecutionContext",
    "NativeContext",
    "PhysicalCpu",
    "EptViolation",
    "PageTable",
    "Perm",
    "compose",
    "Iommu",
    "IommuFault",
    "Irte",
    "IrteMode",
    "Lapic",
    "TIMER_VECTOR",
    "Machine",
    "PAGE_SIZE",
    "DirtyLog",
    "MemorySpace",
    "Exit",
    "ExitReason",
    "Op",
    "Bar",
    "Capability",
    "CapabilityId",
    "PciBus",
    "PciDevice",
    "PiDescriptor",
    "SHADOWED_FIELDS",
    "ExecControl",
    "Vmcs",
    "VmcsField",
    "VmxCapability",
]
