"""Extended page tables (EPT) and address-translation machinery.

A real 4-level radix page table over 4 KiB pages, mapping guest-physical
page frames to parent-physical page frames with permissions.  The same
structure backs:

* the EPT the host hypervisor builds for each of its VMs,
* the *shadow* EPT L0 builds for nested VMs (composition of per-level
  tables, Section 2),
* IOMMU DMA translation tables and the shadow IOMMU tables that make
  (virtual-) passthrough work (Sections 3.1, 3.5).

Write-protection supports dirty logging for live migration.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.hw.mem import PAGE_SHIFT

__all__ = ["Perm", "EptViolation", "PageTable", "compose"]

#: Bits of page-frame number consumed per radix level (9 bits, x86-style).
LEVEL_BITS = 9
LEVELS = 4

# Precomputed shifts/mask for the (hot) unrolled 4-level walk.  The walk
# implementations below are hand-unrolled for LEVELS == 4; the constants
# stay the single source of truth for the geometry.
_S3 = LEVEL_BITS * 3
_S2 = LEVEL_BITS * 2
_S1 = LEVEL_BITS
_MASK = (1 << LEVEL_BITS) - 1
assert LEVELS == 4, "walks below are unrolled for a 4-level table"


class Perm(enum.IntFlag):
    """Page permissions."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RWX = R | W | X


class EptViolation(Exception):
    """Raised on a translation miss or permission failure."""

    def __init__(self, pfn: int, access: Perm, reason: str) -> None:
        super().__init__(f"EPT violation at pfn {pfn:#x} ({access!r}): {reason}")
        self.pfn = pfn
        self.access = access
        self.reason = reason


class Pte:
    """A leaf page-table entry."""

    __slots__ = ("target_pfn", "perm", "saved_perm", "dirty", "accessed")

    def __init__(
        self,
        target_pfn: int,
        perm: "Perm",
        saved_perm: Optional["Perm"] = None,
        dirty: bool = False,
        accessed: bool = False,
    ) -> None:
        self.target_pfn = target_pfn
        self.perm = perm
        #: Original permission before write-protection for dirty logging.
        self.saved_perm = saved_perm
        self.dirty = dirty
        self.accessed = accessed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pte(target_pfn={self.target_pfn:#x}, perm={self.perm!r}, "
            f"dirty={self.dirty})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pte):
            return NotImplemented
        return (
            self.target_pfn == other.target_pfn
            and self.perm == other.perm
            and self.saved_perm == other.saved_perm
            and self.dirty == other.dirty
            and self.accessed == other.accessed
        )


class PageTable:
    """A 4-level radix page table keyed by page frame number.

    The radix nodes are real nested dicts, so a translation performs an
    actual multi-level walk — the walk depth is observable (and charged
    by callers that model walk latency).
    """

    def __init__(self, name: str = "ept") -> None:
        self.name = name
        self._root: Dict[int, dict] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _indices(pfn: int) -> Tuple[int, ...]:
        idx = []
        for level in reversed(range(LEVELS)):
            idx.append((pfn >> (LEVEL_BITS * level)) & ((1 << LEVEL_BITS) - 1))
        return tuple(idx)

    def _leaf_node(self, pfn: int) -> Dict[int, Pte]:
        """The leaf radix node for ``pfn``, creating missing interior
        nodes (unrolled 4-level descent)."""
        node = self._root
        nxt = node.get((pfn >> _S3) & _MASK)
        if nxt is None:
            nxt = node[(pfn >> _S3) & _MASK] = {}
        node = nxt
        nxt = node.get((pfn >> _S2) & _MASK)
        if nxt is None:
            nxt = node[(pfn >> _S2) & _MASK] = {}
        node = nxt
        nxt = node.get((pfn >> _S1) & _MASK)
        if nxt is None:
            nxt = node[(pfn >> _S1) & _MASK] = {}
        return nxt

    def map(self, pfn: int, target_pfn: int, perm: Perm = Perm.RWX) -> None:
        """Map guest pfn -> target pfn with permissions."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        node = self._leaf_node(pfn)
        leaf = pfn & _MASK
        if leaf not in node:
            self._count += 1
        node[leaf] = Pte(target_pfn, perm)

    def map_if_absent(self, pfn: int, target_pfn: int, perm: Perm = Perm.RWX) -> bool:
        """Map only if ``pfn`` has no entry yet; returns whether it
        mapped.  One walk instead of the ``in`` + :meth:`map` pair."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        node = self._leaf_node(pfn)
        leaf = pfn & _MASK
        if leaf in node:
            return False
        node[leaf] = Pte(target_pfn, perm)
        self._count += 1
        return True

    def map_many(self, items, perm: Perm = Perm.RWX) -> None:
        """Map ``(pfn, target_pfn)`` pairs, amortizing the radix walk
        across consecutive pfns that share a leaf node (a big win for
        the sorted, mostly contiguous DMA-pool ranges)."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        prev_hi = -1
        node: Dict[int, Pte] = {}
        added = 0
        for pfn, target_pfn in items:
            hi = pfn >> _S1
            if hi != prev_hi:
                node = self._leaf_node(pfn)
                prev_hi = hi
            leaf = pfn & _MASK
            if leaf not in node:
                added += 1
            node[leaf] = Pte(target_pfn, perm)
        self._count += added

    def map_many_pairs(
        self, pfns: List[int], targets: List[int], perm: Perm = Perm.RWX
    ) -> None:
        """:meth:`map_many` over parallel ``pfns`` / ``targets`` lists:
        leaf-node runs are found by scanning the pfn list alone and each
        run lands in one bulk dict update — the fast path for building
        shadow tables over the (sorted) DMA pool."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        if len(pfns) != len(targets):
            raise ValueError("pfns and targets must have the same length")
        i, n = 0, len(pfns)
        while i < n:
            pfn0 = pfns[i]
            hi = pfn0 >> _S1
            j = i + 1
            while j < n and (pfns[j] >> _S1) == hi:
                j += 1
            node = self._leaf_node(pfn0)
            before = len(node)
            node.update(
                {
                    p & _MASK: Pte(t, perm)
                    for p, t in zip(pfns[i:j], targets[i:j])
                }
            )
            self._count += len(node) - before
            i = j

    def map_many_if_absent(self, pfns, delta: int, perm: Perm = Perm.RWX) -> int:
        """Map ``pfn -> pfn + delta`` for every pfn without an entry yet
        (existing entries are kept); returns how many were added.  Same
        leaf-node run batching as :meth:`map_many`, with a bulk path for
        the common fresh-node case."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        pfns = pfns if isinstance(pfns, list) else list(pfns)
        added = 0
        i, n = 0, len(pfns)
        while i < n:
            pfn0 = pfns[i]
            hi = pfn0 >> _S1
            j = i + 1
            while j < n and (pfns[j] >> _S1) == hi:
                j += 1
            node = self._leaf_node(pfn0)
            if node:
                for pfn in pfns[i:j]:
                    leaf = pfn & _MASK
                    if leaf not in node:
                        node[leaf] = Pte(pfn + delta, perm)
                        added += 1
            else:
                node.update({p & _MASK: Pte(p + delta, perm) for p in pfns[i:j]})
                added += len(node)
            i = j
        self._count += added
        return added

    def lookup_many(self, pfns) -> "List[Optional[Pte]]":
        """Batch :meth:`lookup` with one walk per run of pfns sharing a
        leaf node and a bulk gather per run."""
        pfns = pfns if isinstance(pfns, list) else list(pfns)
        out: List[Optional[Pte]] = []
        extend = out.extend
        root = self._root
        i, n = 0, len(pfns)
        while i < n:
            pfn0 = pfns[i]
            hi = pfn0 >> _S1
            j = i + 1
            while j < n and (pfns[j] >> _S1) == hi:
                j += 1
            node = root.get((pfn0 >> _S3) & _MASK)
            if node is not None:
                node = node.get((pfn0 >> _S2) & _MASK)
                if node is not None:
                    node = node.get(hi & _MASK)
            if node is None:
                extend([None] * (j - i))
            else:
                get = node.get
                extend([get(p & _MASK) for p in pfns[i:j]])
            i = j
        return out

    def unmap(self, pfn: int) -> bool:
        """Remove a mapping; returns whether it existed."""
        node = self._root.get((pfn >> _S3) & _MASK)
        if node is None:
            return False
        node = node.get((pfn >> _S2) & _MASK)
        if node is None:
            return False
        node = node.get((pfn >> _S1) & _MASK)
        if node is None:
            return False
        leaf = pfn & _MASK
        if leaf in node:
            del node[leaf]
            self._count -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def lookup(self, pfn: int) -> Optional[Pte]:
        """Walk the table; returns the PTE or None.  No permission check."""
        node = self._root.get((pfn >> _S3) & _MASK)
        if node is None:
            return None
        node = node.get((pfn >> _S2) & _MASK)
        if node is None:
            return None
        node = node.get((pfn >> _S1) & _MASK)
        if node is None:
            return None
        return node.get(pfn & _MASK)

    def translate(self, pfn: int, access: Perm = Perm.R) -> int:
        """Translate with permission enforcement; raises EptViolation."""
        pte = self.lookup(pfn)
        if pte is None:
            raise EptViolation(pfn, access, "not mapped")
        if access & ~pte.perm:
            raise EptViolation(pfn, access, f"permission {pte.perm!r}")
        pte.accessed = True
        if access & Perm.W:
            pte.dirty = True
        return pte.target_pfn

    def translate_addr(self, addr: int, access: Perm = Perm.R) -> int:
        """Translate a byte address (page offset preserved)."""
        target_pfn = self.translate(addr >> PAGE_SHIFT, access)
        return (target_pfn << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1))

    # ------------------------------------------------------------------
    # Dirty logging via write protection
    # ------------------------------------------------------------------
    def write_protect_all(self) -> int:
        """Remove W from every mapping (start of a dirty-logging round).
        Returns the number of entries protected."""
        n = 0
        for pfn, pte in self.entries():
            if pte.perm & Perm.W:
                pte.saved_perm = pte.perm
                pte.perm = pte.perm & ~Perm.W
                pte.dirty = False
                n += 1
        return n

    def unprotect(self, pfn: int) -> None:
        """Restore W on one page (after logging the dirty page)."""
        pte = self.lookup(pfn)
        if pte is not None and pte.saved_perm is not None:
            pte.perm = pte.saved_perm
            pte.saved_perm = None
            pte.dirty = True

    def dirty_pages(self) -> Iterator[int]:
        """PFNs whose PTE dirty bit is set."""
        for pfn, pte in self.entries():
            if pte.dirty:
                yield pfn

    def clear_dirty(self) -> None:
        for _pfn, pte in self.entries():
            pte.dirty = False

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, Pte]]:
        """Yield (pfn, pte) for every mapping."""

        def walk(node: Dict[int, dict], depth: int, prefix: int):
            for idx in sorted(node):
                child = node[idx]
                pfn_part = (prefix << LEVEL_BITS) | idx
                if depth == LEVELS - 1:
                    yield pfn_part, child
                else:
                    yield from walk(child, depth + 1, pfn_part)

        yield from walk(self._root, 0, 0)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, pfn: int) -> bool:
        return self.lookup(pfn) is not None


def compose(outer: PageTable, inner: PageTable, name: str = "shadow") -> PageTable:
    """Build a shadow table equivalent to translating through ``inner``
    then ``outer`` (inner: Ln->Lk addresses, outer: Lk->host).

    This is exactly the shadow-page-table construction the paper relies on
    for recursive virtual-passthrough (Section 3.5, Figure 6): the L1
    virtual IOMMU holds the combined mappings from Ln VM physical addresses
    to L1 VM physical addresses.

    Permissions intersect.  Inner mappings whose target is not present in
    ``outer`` are skipped (they fault on demand at use time).
    """
    shadow = PageTable(name=name)
    for pfn, pte in inner.entries():
        outer_pte = outer.lookup(pte.target_pfn)
        if outer_pte is None:
            continue
        perm = pte.perm & outer_pte.perm
        if perm == Perm.NONE:
            continue
        shadow.map(pfn, outer_pte.target_pfn, perm)
    return shadow
