"""Extended page tables (EPT) and address-translation machinery.

A real 4-level radix page table over 4 KiB pages, mapping guest-physical
page frames to parent-physical page frames with permissions.  The same
structure backs:

* the EPT the host hypervisor builds for each of its VMs,
* the *shadow* EPT L0 builds for nested VMs (composition of per-level
  tables, Section 2),
* IOMMU DMA translation tables and the shadow IOMMU tables that make
  (virtual-) passthrough work (Sections 3.1, 3.5).

Write-protection supports dirty logging for live migration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.hw.mem import PAGE_SHIFT

__all__ = ["Perm", "EptViolation", "PageTable", "compose"]

#: Bits of page-frame number consumed per radix level (9 bits, x86-style).
LEVEL_BITS = 9
LEVELS = 4


class Perm(enum.IntFlag):
    """Page permissions."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RWX = R | W | X


class EptViolation(Exception):
    """Raised on a translation miss or permission failure."""

    def __init__(self, pfn: int, access: Perm, reason: str) -> None:
        super().__init__(f"EPT violation at pfn {pfn:#x} ({access!r}): {reason}")
        self.pfn = pfn
        self.access = access
        self.reason = reason


@dataclass
class Pte:
    """A leaf page-table entry."""

    target_pfn: int
    perm: Perm
    #: Original permission before write-protection for dirty logging.
    saved_perm: Optional[Perm] = None
    dirty: bool = False
    accessed: bool = False


class PageTable:
    """A 4-level radix page table keyed by page frame number.

    The radix nodes are real nested dicts, so a translation performs an
    actual multi-level walk — the walk depth is observable (and charged
    by callers that model walk latency).
    """

    def __init__(self, name: str = "ept") -> None:
        self.name = name
        self._root: Dict[int, dict] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _indices(pfn: int) -> Tuple[int, ...]:
        idx = []
        for level in reversed(range(LEVELS)):
            idx.append((pfn >> (LEVEL_BITS * level)) & ((1 << LEVEL_BITS) - 1))
        return tuple(idx)

    def map(self, pfn: int, target_pfn: int, perm: Perm = Perm.RWX) -> None:
        """Map guest pfn -> target pfn with permissions."""
        if perm == Perm.NONE:
            raise ValueError("cannot map with empty permissions")
        node = self._root
        *upper, leaf = self._indices(pfn)
        for idx in upper:
            node = node.setdefault(idx, {})
        if leaf not in node:
            self._count += 1
        node[leaf] = Pte(target_pfn=target_pfn, perm=perm)

    def unmap(self, pfn: int) -> bool:
        """Remove a mapping; returns whether it existed."""
        node = self._root
        *upper, leaf = self._indices(pfn)
        for idx in upper:
            nxt = node.get(idx)
            if nxt is None:
                return False
            node = nxt
        if leaf in node:
            del node[leaf]
            self._count -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def lookup(self, pfn: int) -> Optional[Pte]:
        """Walk the table; returns the PTE or None.  No permission check."""
        node = self._root
        *upper, leaf = self._indices(pfn)
        for idx in upper:
            nxt = node.get(idx)
            if nxt is None:
                return None
            node = nxt
        pte = node.get(leaf)
        return pte

    def translate(self, pfn: int, access: Perm = Perm.R) -> int:
        """Translate with permission enforcement; raises EptViolation."""
        pte = self.lookup(pfn)
        if pte is None:
            raise EptViolation(pfn, access, "not mapped")
        if access & ~pte.perm:
            raise EptViolation(pfn, access, f"permission {pte.perm!r}")
        pte.accessed = True
        if access & Perm.W:
            pte.dirty = True
        return pte.target_pfn

    def translate_addr(self, addr: int, access: Perm = Perm.R) -> int:
        """Translate a byte address (page offset preserved)."""
        target_pfn = self.translate(addr >> PAGE_SHIFT, access)
        return (target_pfn << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1))

    # ------------------------------------------------------------------
    # Dirty logging via write protection
    # ------------------------------------------------------------------
    def write_protect_all(self) -> int:
        """Remove W from every mapping (start of a dirty-logging round).
        Returns the number of entries protected."""
        n = 0
        for pfn, pte in self.entries():
            if pte.perm & Perm.W:
                pte.saved_perm = pte.perm
                pte.perm = pte.perm & ~Perm.W
                pte.dirty = False
                n += 1
        return n

    def unprotect(self, pfn: int) -> None:
        """Restore W on one page (after logging the dirty page)."""
        pte = self.lookup(pfn)
        if pte is not None and pte.saved_perm is not None:
            pte.perm = pte.saved_perm
            pte.saved_perm = None
            pte.dirty = True

    def dirty_pages(self) -> Iterator[int]:
        """PFNs whose PTE dirty bit is set."""
        for pfn, pte in self.entries():
            if pte.dirty:
                yield pfn

    def clear_dirty(self) -> None:
        for _pfn, pte in self.entries():
            pte.dirty = False

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, Pte]]:
        """Yield (pfn, pte) for every mapping."""

        def walk(node: Dict[int, dict], depth: int, prefix: int):
            for idx in sorted(node):
                child = node[idx]
                pfn_part = (prefix << LEVEL_BITS) | idx
                if depth == LEVELS - 1:
                    yield pfn_part, child
                else:
                    yield from walk(child, depth + 1, pfn_part)

        yield from walk(self._root, 0, 0)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, pfn: int) -> bool:
        return self.lookup(pfn) is not None


def compose(outer: PageTable, inner: PageTable, name: str = "shadow") -> PageTable:
    """Build a shadow table equivalent to translating through ``inner``
    then ``outer`` (inner: Ln->Lk addresses, outer: Lk->host).

    This is exactly the shadow-page-table construction the paper relies on
    for recursive virtual-passthrough (Section 3.5, Figure 6): the L1
    virtual IOMMU holds the combined mappings from Ln VM physical addresses
    to L1 VM physical addresses.

    Permissions intersect.  Inner mappings whose target is not present in
    ``outer`` are skipped (they fault on demand at use time).
    """
    shadow = PageTable(name=name)
    for pfn, pte in inner.entries():
        outer_pte = outer.lookup(pte.target_pfn)
        if outer_pte is None:
            continue
        perm = pte.perm & outer_pte.perm
        if perm == Perm.NONE:
            continue
        shadow.map(pfn, outer_pte.target_pfn, perm)
    return shadow
