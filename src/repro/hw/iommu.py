"""IOMMU: DMA address translation and interrupt remapping/posting.

The physical IOMMU (Intel VT-d in the paper's testbed) gives each assigned
device a *domain* — a page table translating device-visible I/O virtual
addresses (IOVAs) to host-physical addresses — plus an interrupt-remapping
table whose entries can be in *posted* mode, delivering device interrupts
straight into a running vCPU through a posted-interrupt descriptor.

The same class also backs the *virtual* IOMMU the host hypervisor exposes
to guest hypervisors for (recursive) virtual-passthrough (§3.1, §3.5);
the vIOMMU wrapper with trap-and-shadow semantics lives in
:mod:`repro.hv.viommu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.ept import EptViolation, PageTable, Perm
from repro.hw.pci import PciDevice
from repro.hw.posted import PiDescriptor

__all__ = ["Iommu", "IommuFault", "IrteMode", "Irte"]


class IommuFault(Exception):
    """A DMA access failed translation (unmapped or bad permission)."""


@dataclass
class Irte:
    """Interrupt-remapping table entry."""

    #: "remapped": deliver to a physical LAPIC vector; "posted": deliver
    #: through a posted-interrupt descriptor (VT-d posted interrupts).
    mode: str
    vector: int
    pi_descriptor: Optional[PiDescriptor] = None
    dest_apic_id: Optional[int] = None


class IrteMode:
    REMAPPED = "remapped"
    POSTED = "posted"


class Iommu:
    """DMA translation + interrupt remapping for a set of devices."""

    def __init__(self, name: str = "iommu") -> None:
        self.name = name
        #: Per-device DMA domains (device bdf -> page table).
        self.domains: Dict[int, PageTable] = {}
        #: Interrupt remapping: (device bdf, msi index) -> entry.
        self.irt: Dict[tuple, Irte] = {}
        #: Fault-injection hook (see repro.faults): called as
        #: ``hook(device, iova, write)``; returning True forces the
        #: translation to fault even though a mapping exists.
        self.fault_hook = None

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def attach(self, device: PciDevice) -> PageTable:
        """Create (or return) the DMA domain for a device."""
        table = self.domains.get(device.bdf)
        if table is None:
            table = PageTable(name=f"{self.name}/dom{device.bdf}")
            self.domains[device.bdf] = table
        return table

    def detach(self, device: PciDevice) -> None:
        self.domains.pop(device.bdf, None)
        for key in [k for k in self.irt if k[0] == device.bdf]:
            del self.irt[key]

    def domain_of(self, device: PciDevice) -> Optional[PageTable]:
        return self.domains.get(device.bdf)

    def map(
        self, device: PciDevice, iova_pfn: int, target_pfn: int, perm: Perm = Perm.RW
    ) -> None:
        self.attach(device).map(iova_pfn, target_pfn, perm)

    def translate(self, device: PciDevice, iova: int, write: bool = False) -> int:
        """Translate a device DMA address; raises IommuFault on miss."""
        if self.fault_hook is not None and self.fault_hook(device, iova, write):
            raise IommuFault(
                f"{self.name}: injected translation fault for "
                f"{device.name} @ {iova:#x}"
            )
        table = self.domains.get(device.bdf)
        if table is None:
            raise IommuFault(f"{self.name}: device {device.name} has no domain")
        try:
            return table.translate_addr(iova, Perm.W if write else Perm.R)
        except EptViolation as exc:
            raise IommuFault(f"{self.name}: {device.name}: {exc}") from exc

    # ------------------------------------------------------------------
    # Interrupt remapping
    # ------------------------------------------------------------------
    def set_irte(self, device: PciDevice, msi_index: int, entry: Irte) -> None:
        self.irt[(device.bdf, msi_index)] = entry

    def remap_interrupt(self, device: PciDevice, msi_index: int) -> Irte:
        entry = self.irt.get((device.bdf, msi_index))
        if entry is None:
            raise IommuFault(
                f"{self.name}: no IRTE for {device.name} msi{msi_index}"
            )
        return entry
