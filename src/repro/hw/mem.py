"""Guest/host physical memory spaces with page-granular dirty tracking.

Memory contents are modelled sparsely: a :class:`MemorySpace` stores Python
objects at addresses.  What matters for the reproduction is not byte-level
data but (a) which *pages* are touched — the input to live-migration dirty
logging (paper Section 3.6) — and (b) the address-translation paths
(EPT / IOMMU) data must cross.
"""

from __future__ import annotations

from typing import Any, Dict, Set

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "DirtyLog",
    "MemorySpace",
    "page_of",
    "pages_in_range",
]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


def page_of(addr: int) -> int:
    """Page frame number containing ``addr``."""
    return addr >> PAGE_SHIFT


def pages_in_range(addr: int, size: int) -> range:
    """Page frame numbers covering ``[addr, addr + size)``."""
    if size <= 0:
        return range(0)
    return range(addr >> PAGE_SHIFT, ((addr + size - 1) >> PAGE_SHIFT) + 1)


class MemorySpace:
    """A (guest- or host-) physical address space.

    ``size_bytes`` bounds the valid address range.  Writes optionally feed
    any number of attached dirty logs — the hypervisor's migration code
    attaches/detaches logs around pre-copy rounds.
    """

    def __init__(self, size_bytes: int, name: str = "mem") -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.size_bytes = size_bytes
        self.name = name
        self._cells: Dict[int, Any] = {}
        self._dirty_logs: Set["DirtyLog"] = set()
        #: Pages ever written (used to size migration's first pre-copy pass).
        self.touched_pages: Set[int] = set()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check(self, addr: int, size: int = 1) -> None:
        if addr < 0 or addr + size > self.size_bytes:
            raise IndexError(
                f"{self.name}: access [{addr:#x}, +{size}) outside "
                f"{self.size_bytes:#x}-byte space"
            )

    def read(self, addr: int) -> Any:
        self._check(addr)
        return self._cells.get(addr)

    def write(self, addr: int, value: Any) -> None:
        self._check(addr)
        self._cells[addr] = value
        self._mark_dirty(addr, 1)

    def write_range(self, addr: int, size: int) -> None:
        """Mark a bulk write (e.g. a DMA of ``size`` bytes) without storing
        per-byte contents."""
        self._check(addr, size)
        self._mark_dirty(addr, size)

    def _mark_dirty(self, addr: int, size: int) -> None:
        pages = pages_in_range(addr, size)
        self.touched_pages.update(pages)
        for log in self._dirty_logs:
            log.pages.update(pages)

    # ------------------------------------------------------------------
    # Dirty logging
    # ------------------------------------------------------------------
    def attach_dirty_log(self, log: "DirtyLog") -> None:
        self._dirty_logs.add(log)

    def detach_dirty_log(self, log: "DirtyLog") -> None:
        self._dirty_logs.discard(log)

    @property
    def total_pages(self) -> int:
        return (self.size_bytes + PAGE_SIZE - 1) >> PAGE_SHIFT


class DirtyLog:
    """A set of dirtied page frame numbers, drainable in rounds."""

    def __init__(self, name: str = "dirty") -> None:
        self.name = name
        self.pages: Set[int] = set()

    def drain(self) -> Set[int]:
        """Return and clear the currently logged dirty pages."""
        out = self.pages
        self.pages = set()
        return out

    def __len__(self) -> int:
        return len(self.pages)
