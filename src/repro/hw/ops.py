"""Privileged-operation and exit-reason taxonomy.

Guest code (guest OSes, guest hypervisors, device drivers) interacts with
the simulated hardware by executing :class:`Op` operations through its
execution context.  Whether an operation traps, and who handles the exit,
is decided by the VMX machinery in :mod:`repro.hw.cpu` and the host
hypervisor in :mod:`repro.hv.kvm` — the enum itself carries no policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Op", "ExitReason", "Exit", "NUM_EXIT_REASONS"]


class Op(enum.Enum):
    """Operations guest code can execute."""

    # VMX instructions (only meaningful for hypervisor code)
    VMREAD = "vmread"
    VMWRITE = "vmwrite"
    VMPTRLD = "vmptrld"
    VMRESUME = "vmresume"
    VMLAUNCH = "vmlaunch"
    INVEPT = "invept"

    # Generic privileged instructions
    VMCALL = "vmcall"  # hypercall
    CPUID = "cpuid"
    HLT = "hlt"
    RDMSR = "rdmsr"
    WRMSR = "wrmsr"

    # Memory-mapped / port I/O (device access)
    MMIO_READ = "mmio_read"
    MMIO_WRITE = "mmio_write"
    PIO_WRITE = "pio_write"


class ExitReason(enum.Enum):
    """VM-exit reasons (subset of the Intel SDM list that matters here)."""

    VMCALL = "vmcall"
    CPUID = "cpuid"
    HLT = "hlt"
    MSR_READ = "msr_read"
    MSR_WRITE = "msr_write"
    APIC_TIMER = "apic_timer"  # WRMSR IA32_TSC_DEADLINE
    APIC_ICR = "apic_icr"  # WRMSR x2APIC ICR
    EPT_VIOLATION = "ept_violation"
    MMIO = "mmio"  # EPT violation on a device BAR
    IO_INSTRUCTION = "io"
    VMX_INSTRUCTION = "vmx"  # guest hypervisor executed a VMX instruction
    EXTERNAL_INTERRUPT = "external_interrupt"
    PREEMPTION_TIMER = "preemption_timer"


# Dense per-reason index for the flattened dispatch tables in
# repro.hv.dispatch / repro.hv.profiles: table[reason.index] replaces a
# dict lookup on the hot exit path.
for _index, _reason in enumerate(ExitReason):
    _reason.index = _index
NUM_EXIT_REASONS = len(ExitReason)


#: Well-known MSR indices (x2APIC registers live in MSR space).
MSR_TSC_DEADLINE = 0x6E0
MSR_X2APIC_ICR = 0x830
MSR_X2APIC_EOI = 0x80B


@dataclass(slots=True)
class Exit:
    """One VM exit: the reason plus decoded qualification info."""

    reason: ExitReason
    op: Op
    #: Virtualization level of the VM the exit came from (1 = L1 guest).
    from_level: int
    #: Decoded operands: msr index, mmio address, written value, etc.
    info: Dict[str, Any] = field(default_factory=dict)
    #: The vCPU object that took the exit (set by the CPU machinery).
    vcpu: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Exit {self.reason.value} L{self.from_level}>"
