"""PCI modelling: config space, BARs, capability lists, and buses.

Virtual-passthrough (paper §3.1) depends on virtual I/O devices *conforming
to the physical device interface specification* — PCI — so that guest
hypervisors' existing passthrough frameworks can assign them.  The DVH
migration support (§3.6) is a new PCI *capability* ("the migration
capability"), which rides on the standard capability-list mechanism
modelled here.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "CapabilityId",
    "Capability",
    "Bar",
    "PciDevice",
    "PciBus",
]


class CapabilityId(enum.Enum):
    """PCI capability IDs (standard ones plus the paper's new one)."""

    MSI = 0x05
    MSIX = 0x11
    PCIE = 0x10
    SRIOV = 0x20  # (actually an extended capability; flattened here)
    #: The paper's new capability: lets a guest hypervisor ask the host
    #: hypervisor to capture virtual-device state and log DMA-dirtied
    #: pages for nested-VM migration (§3.6).
    MIGRATION = 0x42


@dataclass
class Capability:
    """One entry in a device's capability list."""

    cap_id: CapabilityId
    registers: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Bar:
    """A base address register: an MMIO window of the device.

    ``base`` is assigned in the owner's address space when the device is
    plugged into a bus.  Whether an access through a mapping traps is a
    property of how the *mapping* was established (EPT), not of the BAR.
    """

    index: int
    size: int
    base: Optional[int] = None

    def contains(self, addr: int) -> bool:
        return self.base is not None and self.base <= addr < self.base + self.size


class PciDevice:
    """Base class for every PCI device in the simulation.

    Subclasses: physical NIC/SSD, SR-IOV virtual functions, virtio
    paravirtual devices, and the virtual IOMMU's register window.
    """

    _bdf_counter = itertools.count(0)

    def __init__(
        self,
        name: str,
        vendor_id: int,
        device_id: int,
        bar_sizes: Optional[List[int]] = None,
    ) -> None:
        self.name = name
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.bdf = next(PciDevice._bdf_counter)
        self.bars: List[Bar] = [
            Bar(index=i, size=size) for i, size in enumerate(bar_sizes or [0x1000])
        ]
        self.capabilities: List[Capability] = []
        #: Set when a hypervisor has assigned this device to a VM.
        self.assigned_to: Optional[Any] = None
        #: The driver currently bound (guest driver or hypervisor stub).
        self.bound_driver: Optional[Any] = None

    # ------------------------------------------------------------------
    # Capability list
    # ------------------------------------------------------------------
    def add_capability(self, cap: Capability) -> None:
        if self.find_capability(cap.cap_id) is not None:
            raise ValueError(f"{self.name}: duplicate capability {cap.cap_id}")
        self.capabilities.append(cap)

    def find_capability(self, cap_id: CapabilityId) -> Optional[Capability]:
        """Walk the capability list (as system software would)."""
        for cap in self.capabilities:
            if cap.cap_id == cap_id:
                return cap
        return None

    def has_capability(self, cap_id: CapabilityId) -> bool:
        return self.find_capability(cap_id) is not None

    # ------------------------------------------------------------------
    # Device behaviour hooks (overridden by concrete devices)
    # ------------------------------------------------------------------
    def mmio_write(self, addr: int, value: Any) -> None:
        """Handle a (non-trapping or emulated) MMIO write to a BAR."""
        raise NotImplementedError

    def mmio_read(self, addr: int) -> Any:
        raise NotImplementedError

    def bar_of(self, addr: int) -> Optional[Bar]:
        for bar in self.bars:
            if bar.contains(addr):
                return bar
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} bdf={self.bdf}>"


class PciBus:
    """A PCI bus: address allocation and enumeration."""

    def __init__(self, name: str, mmio_base: int = 0xE000_0000) -> None:
        self.name = name
        self.devices: List[PciDevice] = []
        self._next_mmio = mmio_base

    def plug(self, device: PciDevice) -> PciDevice:
        """Attach a device and assign its BAR windows."""
        for bar in device.bars:
            bar.base = self._next_mmio
            self._next_mmio += max(bar.size, 0x1000)
        self.devices.append(device)
        return device

    def unplug(self, device: PciDevice) -> None:
        self.devices.remove(device)

    def enumerate(self) -> Iterator[PciDevice]:
        """Devices in discovery order."""
        return iter(list(self.devices))

    def device_at(self, addr: int) -> Optional[PciDevice]:
        """Which device's BAR covers this MMIO address, if any."""
        for dev in self.devices:
            if dev.bar_of(addr) is not None:
                return dev
        return None

    def find(self, name: str) -> Optional[PciDevice]:
        for dev in self.devices:
            if dev.name == name:
                return dev
        return None
