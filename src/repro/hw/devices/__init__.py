"""Simulated devices: physical NIC/SSD and virtio paravirtual devices."""

from repro.hw.devices.block import BlockRequest, SsdDevice
from repro.hw.devices.nic import Packet, PhysicalNic, RemoteClient, VirtualFunction, Wire
from repro.hw.devices.virtio import VirtioDevice, Virtqueue, VirtqueueFull

__all__ = [
    "BlockRequest",
    "SsdDevice",
    "Packet",
    "PhysicalNic",
    "RemoteClient",
    "VirtualFunction",
    "Wire",
    "VirtioDevice",
    "Virtqueue",
    "VirtqueueFull",
]
