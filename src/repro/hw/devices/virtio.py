"""Virtio paravirtual devices: virtqueues and the PCI device model.

These are the "virtual I/O devices" of the paper's traditional model
(Figure 2a) and the devices that get *assigned* under virtual-passthrough
(Figure 2c).  They are PCI devices with standard BARs and capability lists
precisely because virtual-passthrough requires virtual devices that
conform to the physical device interface specification (§3.1: "PCI-based
virtual I/O devices are widely available and are assignable").

The virtqueue implements real descriptor/avail/used index arithmetic with
wraparound, so ring invariants are testable properties; buffer addresses
are guest-physical and must be translated by whoever moves the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.hw.pci import Capability, CapabilityId, PciDevice

__all__ = ["VirtqueueFull", "Virtqueue", "VirtioDevice", "NOTIFY_OFFSET"]

#: Offset of the queue-notify doorbell inside BAR0.
NOTIFY_OFFSET = 0x100

VIRTIO_VENDOR = 0x1AF4
VIRTIO_NET_DEVICE = 0x1000
VIRTIO_BLK_DEVICE = 0x1001


class VirtqueueFull(Exception):
    """No free descriptors."""


@dataclass(slots=True)
class Descriptor:
    addr: int
    length: int
    in_use: bool = False
    payload: Any = None


class Virtqueue:
    """One virtqueue: descriptor table + avail ring + used ring."""

    def __init__(self, index: int, size: int = 256) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("virtqueue size must be a power of two")
        self.index = index
        self.size = size
        self.desc: List[Descriptor] = [Descriptor(0, 0) for _ in range(size)]
        self._free: List[int] = list(range(size))
        # Ring state: monotonically increasing indices, slots = idx % size.
        self.avail_ring: List[int] = [0] * size
        self.avail_idx = 0  # driver-owned producer index
        self.last_avail = 0  # device-owned consumer index
        self.used_ring: List[Tuple[int, int]] = [(0, 0)] * size
        self.used_idx = 0  # device-owned producer index
        self.last_used = 0  # driver-owned consumer index

    # ------------------------------------------------------------------
    # Driver (guest) side
    # ------------------------------------------------------------------
    def add_buffer(self, addr: int, length: int, payload: Any = None) -> int:
        """Post a buffer; returns the descriptor id."""
        if not self._free:
            raise VirtqueueFull(f"queue {self.index} has no free descriptors")
        if self.avail_idx - self.last_avail >= self.size:
            raise VirtqueueFull(f"queue {self.index} avail ring full")
        desc_id = self._free.pop()
        d = self.desc[desc_id]
        d.addr, d.length, d.in_use, d.payload = addr, length, True, payload
        self.avail_ring[self.avail_idx % self.size] = desc_id
        self.avail_idx += 1
        return desc_id

    def reap_used(self) -> List[Tuple[int, int, Any]]:
        """Collect completions: list of (desc_id, written_len, payload)."""
        out = []
        while self.last_used < self.used_idx:
            desc_id, written = self.used_ring[self.last_used % self.size]
            d = self.desc[desc_id]
            out.append((desc_id, written, d.payload))
            d.in_use = False
            d.payload = None
            self._free.append(desc_id)
            self.last_used += 1
        return out

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------
    def pop_avail(self) -> Optional[Tuple[int, int, int, Any]]:
        """Take the next posted buffer: (desc_id, addr, len, payload)."""
        if self.last_avail >= self.avail_idx:
            return None
        desc_id = self.avail_ring[self.last_avail % self.size]
        self.last_avail += 1
        d = self.desc[desc_id]
        return desc_id, d.addr, d.length, d.payload

    _KEEP = object()

    def push_used(self, desc_id: int, written: int, payload: Any = _KEEP) -> None:
        """Complete a buffer; ``payload`` (if given) replaces the
        descriptor's payload — how a device hands received data to the
        driver."""
        if not self.desc[desc_id].in_use:
            raise ValueError(f"descriptor {desc_id} not in use")
        if payload is not Virtqueue._KEEP:
            self.desc[desc_id].payload = payload
        self.used_ring[self.used_idx % self.size] = (desc_id, written)
        self.used_idx += 1

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------
    def corrupt_next_avail(self, addr: Optional[int] = None,
                           length: Optional[int] = None) -> bool:
        """Malform the next descriptor the device will pop (a guest bug
        or memory corruption on the shared ring).  Returns False when no
        buffer is pending.  Hardened backends must detect the malformed
        descriptor and recover instead of crashing or moving bad data."""
        if self.last_avail >= self.avail_idx:
            return False
        d = self.desc[self.avail_ring[self.last_avail % self.size]]
        if addr is not None:
            d.addr = addr
        if length is not None:
            d.length = length
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def avail_pending(self) -> int:
        """Buffers posted by the driver and not yet consumed."""
        return self.avail_idx - self.last_avail

    @property
    def used_pending(self) -> int:
        """Completions not yet reaped by the driver."""
        return self.used_idx - self.last_used

    @property
    def free_descriptors(self) -> int:
        return len(self._free)


class VirtioDevice(PciDevice):
    """A virtio PCI device (net or blk).

    The *backend* (who services kicks and fills RX rings) is attached by
    the hypervisor that provides the device; the *driver* runs in whatever
    guest the device is visible to — possibly a nested VM when the device
    has been virtually passed through.
    """

    def __init__(
        self,
        name: str,
        kind: str = "net",
        num_queues: int = 2,
        queue_size: int = 256,
        provider_level: int = 0,
    ) -> None:
        device_id = VIRTIO_NET_DEVICE if kind == "net" else VIRTIO_BLK_DEVICE
        super().__init__(name, VIRTIO_VENDOR, device_id, bar_sizes=[0x4000])
        self.kind = kind
        #: Virtualization level of the hypervisor providing this device
        #: (0 = host hypervisor: required for virtual-passthrough).
        self.provider_level = provider_level
        self.queues: List[Virtqueue] = [
            Virtqueue(i, queue_size) for i in range(num_queues)
        ]
        self.add_capability(Capability(CapabilityId.MSIX, {"table_size": num_queues}))
        self.add_capability(Capability(CapabilityId.PCIE, {}))
        #: queue index -> MSI vector the driver configured.
        self.msi_vectors: dict = {}
        #: Called on a doorbell write: fn(queue_index).
        self.on_kick: Optional[Callable[[int], None]] = None
        #: Fault-injection hook (see repro.faults): called as
        #: ``hook(queue_index)`` on every doorbell; returning True
        #: swallows the notification (a lost kick).
        self.fault_hook: Optional[Callable[[int], bool]] = None

    # Conventional queue layout for virtio-net: pairs [rx0, tx0, rx1,
    # tx1, ...] (multiqueue, one pair per worker under RSS).
    @property
    def num_queue_pairs(self) -> int:
        return max(1, len(self.queues) // 2)

    def rx_q(self, pair: int) -> Virtqueue:
        return self.queues[2 * pair]

    def tx_q(self, pair: int) -> Virtqueue:
        return self.queues[2 * pair + 1]

    @property
    def rx(self) -> Virtqueue:
        return self.rx_q(0)

    @property
    def tx(self) -> Virtqueue:
        return self.tx_q(0)

    def mmio_write(self, addr: int, value: Any) -> None:
        """Doorbell: value = queue index."""
        bar = self.bar_of(addr)
        if bar is None or addr - bar.base != NOTIFY_OFFSET:
            # Config writes: ignore contents, they are setup-time only.
            return
        if self.fault_hook is not None and self.fault_hook(int(value)):
            return  # notification lost in flight
        if self.on_kick is not None:
            self.on_kick(int(value))

    def mmio_read(self, addr: int) -> Any:
        return 0

    @property
    def notify_addr(self) -> int:
        base = self.bars[0].base
        if base is None:
            raise RuntimeError(f"{self.name} not plugged into a bus")
        return base + NOTIFY_OFFSET
