"""Block storage: the testbed's SATA SSD.

Requests complete after a fixed device latency plus transfer time; the
device processes one request at a time per queue (enough fidelity for the
MySQL workload's fsync-bound commit path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.hw.pci import Capability, CapabilityId, PciDevice

__all__ = ["BlockRequest", "SsdDevice"]

#: Sustained transfer rate of the Intel DC S3500 480GB (about 500 MB/s read).
SSD_BYTES_PER_SEC = 500_000_000


@dataclass(slots=True)
class BlockRequest:
    op: str  # "read" | "write" | "flush"
    size: int
    payload: Any = None


class SsdDevice(PciDevice):
    """The physical SSD, serviced FIFO with latency + bandwidth."""

    def __init__(self, name: str, sim, costs) -> None:
        super().__init__(name, 0x8086, 0x0953, bar_sizes=[0x2000])
        self.add_capability(Capability(CapabilityId.PCIE, {}))
        self.sim = sim
        self.costs = costs
        self._busy_until = 0

    def submit(self, request: BlockRequest, on_complete: Callable[[BlockRequest], None]) -> int:
        """Queue a request; returns its completion time."""
        service = self.costs.ssd_latency
        if request.op != "flush":
            service += int(request.size / SSD_BYTES_PER_SEC * self.sim.freq_hz)
        start = max(self.sim.now, self._busy_until)
        done = start + service
        self._busy_until = done
        self.sim.call_at(done, lambda: on_complete(request))
        return done

    def mmio_write(self, addr: int, value: Any) -> None:
        return

    def mmio_read(self, addr: int) -> Any:
        return 0
