"""Physical NIC, SR-IOV virtual functions, and the wire.

Models the testbed's dual-port Intel X520 10 Gb NIC: a PCI device with
SR-IOV (so VFs can be passed through to VMs/nested VMs) and a shared
10 Gb/s wire with serialization delay — the line-rate ceiling that caps
the netperf STREAM/MAERTS workloads.

Packets are delivered to *flow consumers*: the host network stack (vhost
bridging), or a VF bound to a guest driver (device passthrough).  DMA from
a VF goes through the physical IOMMU, exactly like Figure 3a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.hw.pci import Capability, CapabilityId, PciDevice

__all__ = ["Packet", "Wire", "PhysicalNic", "VirtualFunction", "RemoteClient"]


@dataclass(slots=True)
class Packet:
    """One wire message (a TCP segment / aggregated GRO batch)."""

    flow: str
    size: int
    payload: Any = None
    #: True for client->server direction.
    inbound: bool = True
    #: RSS queue hint: which receive queue (worker) this flow hashes to.
    queue_hint: int = 0


class Wire:
    """A full-duplex link with rate limiting and propagation latency.

    Each direction serializes independently: a packet occupies the wire
    for ``size * 8 / bps`` seconds, then propagates with fixed latency.
    """

    def __init__(self, sim, bps: float, latency_cycles: int) -> None:
        self.sim = sim
        self.bps = bps
        self.latency = latency_cycles
        self._busy_until = {"in": 0, "out": 0}
        self.bytes_carried = {"in": 0, "out": 0}

    def transmit(
        self,
        packet: Packet,
        deliver: Callable[[Packet], None],
        wire_size: Optional[int] = None,
    ) -> int:
        """Schedule delivery of ``packet``; returns the delivery time.
        ``wire_size`` (default ``packet.size``) is the on-wire byte count
        including protocol headers."""
        direction = "in" if packet.inbound else "out"
        on_wire = wire_size if wire_size is not None else packet.size
        serialization = int(on_wire * 8 / self.bps * self.sim.freq_hz)
        start = max(self.sim.now, self._busy_until[direction])
        done = start + serialization
        self._busy_until[direction] = done
        # Meter what actually occupied the wire (protocol headers
        # included), not the goodput — metering goodput here made the
        # carried-bytes counter drift below the time the wire was busy.
        self.bytes_carried[direction] += on_wire
        arrival = done + self.latency
        self.sim.call_at(arrival, lambda: deliver(packet))
        return arrival

    def busy_until(self, inbound: bool) -> int:
        """When the given direction's current backlog finishes
        serializing (<= now means the direction is idle)."""
        return self._busy_until["in" if inbound else "out"]


class PhysicalNic(PciDevice):
    """The host's physical NIC (PF) with SR-IOV support."""

    VENDOR = 0x8086
    DEVICE = 0x10FB  # 82599 / X520

    def __init__(self, name: str, wire: Wire, num_vfs: int = 8) -> None:
        super().__init__(name, self.VENDOR, self.DEVICE, bar_sizes=[0x8000])
        self.wire = wire
        self.add_capability(Capability(CapabilityId.PCIE, {}))
        self.add_capability(
            Capability(CapabilityId.SRIOV, {"total_vfs": num_vfs, "num_vfs": 0})
        )
        self.add_capability(Capability(CapabilityId.MSIX, {"table_size": 64}))
        self.vfs: List["VirtualFunction"] = []
        #: flow id -> consumer callback for inbound packets.
        self._flow_consumers: Dict[str, Callable[[Packet], None]] = {}
        #: Fault-injection hook (see repro.faults): called as
        #: ``hook(direction, packet)`` with direction "rx" or "tx";
        #: returns the (possibly corrupted) packet, or None to drop it.
        self.fault_hook: Optional[Callable[[str, Packet], Optional[Packet]]] = None

    # ------------------------------------------------------------------
    # SR-IOV
    # ------------------------------------------------------------------
    def create_vf(self) -> "VirtualFunction":
        cap = self.find_capability(CapabilityId.SRIOV)
        assert cap is not None
        if cap.registers["num_vfs"] >= cap.registers["total_vfs"]:
            raise RuntimeError(f"{self.name}: out of VFs")
        vf = VirtualFunction(f"{self.name}.vf{len(self.vfs)}", self)
        cap.registers["num_vfs"] += 1
        self.vfs.append(vf)
        return vf

    # ------------------------------------------------------------------
    # Flow steering
    # ------------------------------------------------------------------
    def register_flow(self, flow: str, consumer: Callable[[Packet], None]) -> None:
        """Steer inbound packets of ``flow`` to ``consumer``."""
        self._flow_consumers[flow] = consumer

    def unregister_flow(self, flow: str) -> None:
        self._flow_consumers.pop(flow, None)

    def rx(self, packet: Packet) -> None:
        """A packet arrived from the wire."""
        if self.fault_hook is not None:
            faulted = self.fault_hook("rx", packet)
            if faulted is None:
                return  # injected RX drop (DMA/ring fault)
            packet = faulted
        consumer = self._flow_consumers.get(packet.flow)
        if consumer is not None:
            consumer(packet)
        # Unconsumed packets are dropped, as real NICs do.

    def tx(
        self,
        packet: Packet,
        deliver: Callable[[Packet], None],
        wire_size: Optional[int] = None,
    ) -> int:
        """Send a packet out the wire toward the client."""
        if self.fault_hook is not None:
            faulted = self.fault_hook("tx", packet)
            if faulted is None:
                return self.wire.sim.now  # injected TX drop
            packet = faulted
        packet.inbound = False
        return self.wire.transmit(packet, deliver, wire_size=wire_size)

    def mmio_write(self, addr: int, value: Any) -> None:
        # PF register writes are host-setup only; no behaviour needed.
        return

    def mmio_read(self, addr: int) -> Any:
        return 0


class VirtualFunction(PciDevice):
    """An SR-IOV virtual function — assignable to a (nested) VM.

    The VF shares the PF's wire.  Its doorbell BAR is mapped directly
    into the guest under passthrough, so TX kicks don't trap; the cost
    and interrupt behaviour are modelled by the driver/backend layers.
    """

    def __init__(self, name: str, pf: PhysicalNic) -> None:
        super().__init__(name, PhysicalNic.VENDOR, 0x10ED, bar_sizes=[0x4000])
        self.pf = pf
        self.add_capability(Capability(CapabilityId.PCIE, {}))
        self.add_capability(Capability(CapabilityId.MSIX, {"table_size": 4}))
        #: Doorbell callback installed by the bound driver's backend.
        self.on_doorbell: Optional[Callable[[], None]] = None

    def mmio_write(self, addr: int, value: Any) -> None:
        if self.on_doorbell is not None:
            self.on_doorbell()

    def mmio_read(self, addr: int) -> Any:
        return 0


class RemoteClient:
    """The client machine driving the server under test.

    Runs "natively on Linux with the full hardware available" (paper §4),
    so it is modelled as an event source/sink with a small per-transaction
    turnaround cost, never the bottleneck.
    """

    def __init__(self, sim, wire: Wire, nic: PhysicalNic, costs) -> None:
        self.sim = sim
        self.wire = wire
        self.nic = nic
        self.costs = costs
        self._handlers: Dict[str, Callable[[Packet], None]] = {}

    def on_receive(self, flow: str, handler: Callable[[Packet], None]) -> None:
        """Register the client-side handler for server->client packets."""
        self._handlers[flow] = handler

    def off_receive(self, flow: str) -> None:
        """Drop the handler for ``flow``; later packets are discarded
        (the client closed its socket)."""
        self._handlers.pop(flow, None)

    def receive(self, packet: Packet) -> None:
        """A server->client packet arrived at the client NIC."""
        handler = self._handlers.get(packet.flow)
        if handler is not None:
            handler(packet)

    def send(
        self,
        flow: str,
        size: int,
        payload: Any = None,
        queue_hint: int = 0,
        wire_size: Optional[int] = None,
    ) -> None:
        """Transmit one client->server message.  ``wire_size`` (default
        ``size``) is what occupies the wire — protocol headers make it a
        few percent larger than the goodput."""
        pkt = Packet(
            flow=flow, size=size, payload=payload, inbound=True, queue_hint=queue_hint
        )
        self.wire.transmit(pkt, self.nic.rx, wire_size=wire_size)

    def send_after(
        self,
        delay: int,
        flow: str,
        size: int,
        payload: Any = None,
        queue_hint: int = 0,
        wire_size: Optional[int] = None,
    ) -> None:
        """Like :meth:`send`, ``delay`` cycles from now.  ``wire_size``
        is forwarded — dropping it silently under-serialized deferred
        sends relative to immediate ones."""
        self.sim.call_after(
            delay,
            lambda: self.send(
                flow, size, payload, queue_hint, wire_size=wire_size
            ),
        )
