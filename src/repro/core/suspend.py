"""Suspend/resume — an I/O-interposition benefit DVH preserves (§1).

Device passthrough loses suspend/resume along with migration: the
hypervisor cannot encapsulate state sitting in physical hardware.  With
DVH all virtual hardware is software in the host hypervisor, so a VM —
including a nested VM using virtual-passthrough — can be checkpointed
and restored.

The checkpoint captures, per vCPU: LAPIC state (pending vectors, armed
timer deadline), the posted-interrupt descriptor, the vmcs12 fields
(which include the DVH virtual-hardware registers: virtual-timer
deadline, VCIMTAR); and per assigned virtual device: the ring indices
and in-flight descriptors via the same host-side encapsulation the
migration capability uses (§3.6).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hv.passthrough import MigrationNotSupported
from repro.hw.vmx import VmcsField

__all__ = ["VmCheckpoint", "suspend_vm", "resume_vm"]


@dataclass
class VmCheckpoint:
    """A suspended VM's state."""

    vm_name: str
    taken_at: int  # host TSC when suspended
    #: per-vCPU: irr, isr, timer deadline/vector, PIR, vmcs fields.
    vcpus: List[Dict[str, Any]] = field(default_factory=list)
    #: device name -> (queue index -> ring snapshot)
    devices: Dict[str, Dict[int, Dict[str, Any]]] = field(default_factory=dict)
    #: number of memory pages the checkpoint references.
    memory_pages: int = 0
    #: timer deadlines are stored relative to suspend time so they can
    #: be re-armed correctly after an arbitrarily long suspension.
    dvh_state: Dict[str, Any] = field(default_factory=dict)


def suspend_vm(machine, vm, devices: Optional[List] = None) -> VmCheckpoint:
    """Capture a checkpoint of ``vm`` (refuses hardware-coupled VMs)."""
    if getattr(vm, "hardware_coupled", False):
        raise MigrationNotSupported(
            f"{vm.name} uses physical device passthrough; its state cannot "
            "be encapsulated"
        )
    now = machine.sim.now
    checkpoint = VmCheckpoint(vm_name=vm.name, taken_at=now)
    host_hv = machine.host_hv
    for vcpu in vm.vcpus:
        deadline = vcpu.lapic.timer_deadline
        # Cancel the host-side hrtimer backing this vCPU's timer: a
        # suspended VM must not receive interrupts; the deadline is
        # saved relative and re-armed on resume.
        handle = host_hv._timer_handles.pop(vcpu, None)
        if handle is not None:
            handle.cancel()
        checkpoint.vcpus.append(
            {
                "index": vcpu.index,
                "irr": set(vcpu.lapic.irr),
                "isr": list(vcpu.lapic.isr),
                "timer_remaining": (
                    None if deadline is None else max(0, deadline - vcpu.read_tsc())
                ),
                "timer_vector": vcpu.lapic.timer_vector,
                "pir": set(vcpu.pi_desc.pir),
                "vmcs_fields": dict(vcpu.vmcs.fields),
                "controls": vcpu.vmcs.controls.copy(),
            }
        )
    for device in devices or []:
        queues = {}
        for i, queue in enumerate(getattr(device, "queues", [])):
            queues[i] = {
                "avail_idx": queue.avail_idx,
                "last_avail": queue.last_avail,
                "used_idx": queue.used_idx,
                "last_used": queue.last_used,
                "in_flight": queue.avail_idx - queue.last_avail,
            }
        checkpoint.devices[device.name] = queues
    checkpoint.memory_pages = len(vm.memory.touched_pages)
    # DVH virtual-hardware state (§3.6's list: only virtual timers carry
    # state; virtual IPIs and virtual idle are stateless).
    checkpoint.dvh_state = {
        "virtual_timer_enabled": any(
            v.vmcs.controls.virtual_timer_enable for v in vm.vcpus
        ),
        "vcimtar": vm.vcimtar,
    }
    return checkpoint


def resume_vm(machine, vm, checkpoint: VmCheckpoint) -> None:
    """Restore ``vm`` from a checkpoint (on the same or an identical
    host, like migration's destination)."""
    if checkpoint.vm_name != vm.name:
        raise ValueError(
            f"checkpoint is for {checkpoint.vm_name}, not {vm.name}"
        )
    if len(checkpoint.vcpus) != len(vm.vcpus):
        raise ValueError("vCPU count mismatch")
    for state, vcpu in zip(checkpoint.vcpus, vm.vcpus):
        vcpu.lapic.irr = set(state["irr"])
        vcpu.lapic.isr = list(state["isr"])
        vcpu.pi_desc.pir = set(state["pir"])
        vcpu.vmcs.fields = dict(state["vmcs_fields"])
        vcpu.vmcs.controls = state["controls"].copy()
        remaining = state["timer_remaining"]
        if remaining is not None:
            # Re-arm relative to the (new) current time: a VM suspended
            # 10ms before its timer fires still sees it 10ms after resume.
            new_deadline = vcpu.read_tsc() + remaining
            vcpu.lapic.arm_timer(new_deadline, state["timer_vector"])
            vcpu.vmcs.write(VmcsField.VIRTUAL_TIMER_DEADLINE, new_deadline)
            if vcpu.vmcs.controls.virtual_timer_enable:
                machine.host_hv._arm_hrtimer(
                    vcpu,
                    new_deadline - vcpu.total_tsc_offset(),
                    state["timer_vector"],
                    provider_level=0,
                )
        else:
            vcpu.lapic.disarm_timer()
    vm.vcimtar = checkpoint.dvh_state.get("vcimtar")
