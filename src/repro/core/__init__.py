"""DVH — Direct Virtual Hardware (the paper's contribution).

Four mechanisms (§3.1-3.4), their recursive forms (§3.5), and migration
support (§3.6):

* :mod:`repro.core.vpassthrough` — assign host-provided virtual I/O
  devices to nested VMs;
* :mod:`repro.core.vtimer` — host-emulated per-vCPU virtual LAPIC timers;
* :mod:`repro.core.vipi` — virtual ICR + virtual CPU interrupt mapping
  table;
* :mod:`repro.core.vidle` — HLT handled by the host only;
* :mod:`repro.core.migration` — live migration of VMs and nested VMs,
  including the PCI migration capability for virtual-passthrough.

Attribute access is lazy: the hypervisor layer imports
:mod:`repro.core.features` while this package's submodules import the
hypervisor layer, so eager re-exports here would create an import cycle.
"""

from repro.core.features import DvhFeatures

_LAZY = {
    "enable_virtual_idle": ("repro.core.vidle", "enable_virtual_idle"),
    "update_virtual_idle_policy": ("repro.core.vidle", "update_virtual_idle_policy"),
    "setup_virtual_ipis": ("repro.core.vipi", "setup_virtual_ipis"),
    "VirtualPassthroughAssignment": (
        "repro.core.vpassthrough",
        "VirtualPassthroughAssignment",
    ),
    "assign_virtual_device": ("repro.core.vpassthrough", "assign_virtual_device"),
    "populate_chain_epts": ("repro.core.vpassthrough", "populate_chain_epts"),
    "enable_virtual_timers": ("repro.core.vtimer", "enable_virtual_timers"),
    "restore_virtual_timer": ("repro.core.vtimer", "restore_virtual_timer"),
    "save_virtual_timer": ("repro.core.vtimer", "save_virtual_timer"),
    "LiveMigration": ("repro.core.migration", "LiveMigration"),
    "VmCheckpoint": ("repro.core.suspend", "VmCheckpoint"),
    "suspend_vm": ("repro.core.suspend", "suspend_vm"),
    "resume_vm": ("repro.core.suspend", "resume_vm"),
    "MigrationResult": ("repro.core.migration", "MigrationResult"),
    "add_migration_capability": ("repro.core.migration", "add_migration_capability"),
}

__all__ = ["DvhFeatures"] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
