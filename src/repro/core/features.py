"""DVH feature flags and capability plumbing.

The paper introduces four DVH mechanisms (§3.1-3.4) plus posted-interrupt
support in the virtual IOMMU (evaluated as a separate increment in
Figure 8).  A :class:`DvhFeatures` value selects which mechanisms the host
hypervisor provides; guest hypervisors *discover* them through VMX
capability bits and *enable* them through VM-execution-control bits
(§3.2-3.3), which is what makes the recursive AND-combining of §3.5 work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Tuple

__all__ = ["DvhFeatures", "DVH_MECHANISMS", "negotiate", "fallback_io_model"]

#: Every negotiable DVH mechanism, in capability-bit order.
DVH_MECHANISMS = (
    "virtual_passthrough",
    "viommu_posted_interrupts",
    "virtual_ipi",
    "virtual_timer",
    "virtual_idle",
    "vtimer_direct_delivery",
)

#: Mechanisms that only work when another mechanism negotiated too
#: (posted vIOMMU interrupts target virtually-passed-through devices;
#: direct timer delivery needs the host-emulated virtual timer).
_DEPENDS_ON = {
    "viommu_posted_interrupts": "virtual_passthrough",
    "vtimer_direct_delivery": "virtual_timer",
}


@dataclass(frozen=True)
class DvhFeatures:
    """Which DVH mechanisms the host hypervisor provides."""

    #: §3.1: assign host-provided virtual I/O devices to nested VMs.
    virtual_passthrough: bool = False
    #: Figure 8 "+ posted interrupts": the virtual IOMMU supports posted
    #: interrupts, so the host can deliver virtual-device interrupts
    #: directly to nested VMs.
    viommu_posted_interrupts: bool = False
    #: §3.3: virtual ICR + virtual CPU interrupt mapping table.
    virtual_ipi: bool = False
    #: §3.2: per-vCPU virtual LAPIC timer emulated by the host.
    virtual_timer: bool = False
    #: §3.4: guest hypervisors stop trapping HLT; only the host does.
    virtual_idle: bool = False
    #: §3.2's further optimization: deliver virtual-timer interrupts to
    #: the nested VM directly from the host using posted interrupts (the
    #: host knows the vector the nested VM programmed).  Without it, the
    #: expiry is delivered through the guest hypervisor like a regular
    #: emulated timer's.
    vtimer_direct_delivery: bool = True

    # ------------------------------------------------------------------
    # The configurations used throughout the paper's evaluation
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "DvhFeatures":
        """Vanilla KVM (no DVH)."""
        return cls()

    @classmethod
    def vp_only(cls) -> "DvhFeatures":
        """DVH-VP: only virtual-passthrough, without posted-interrupt
        support in the virtual IOMMU — the paper's conservative
        comparison point against device passthrough (§4)."""
        return cls(virtual_passthrough=True)

    @classmethod
    def full(cls) -> "DvhFeatures":
        """All DVH mechanisms (the paper's "DVH" configuration)."""
        return cls(
            virtual_passthrough=True,
            viommu_posted_interrupts=True,
            virtual_ipi=True,
            virtual_timer=True,
            virtual_idle=True,
            vtimer_direct_delivery=True,
        )

    def with_(self, **overrides: bool) -> "DvhFeatures":
        """Copy with the given mechanisms toggled (Figure 8 increments)."""
        return replace(self, **overrides)

    @property
    def any_enabled(self) -> bool:
        return any(
            (
                self.virtual_passthrough,
                self.viommu_posted_interrupts,
                self.virtual_ipi,
                self.virtual_timer,
                self.virtual_idle,
            )
        )


# ----------------------------------------------------------------------
# Capability negotiation with graceful degradation (see repro.faults)
# ----------------------------------------------------------------------
def negotiate(
    requested: DvhFeatures, faulted: Iterable[str] = ()
) -> Tuple[DvhFeatures, List[str]]:
    """Intersect the requested DVH mechanisms with what capability
    discovery actually reports.

    ``faulted`` names mechanisms whose VMX capability bits read as
    unavailable (a flaky or hostile host, or an injected capability
    fault).  Returns the degraded feature set plus the list of requested
    mechanisms that were dropped — dropping a mechanism also drops
    anything depending on it, mirroring the recursive AND-combining of
    §3.5: a level only offers what every level below it offers.
    """
    faulted = set(faulted)
    unknown = faulted - set(DVH_MECHANISMS)
    if unknown:
        raise ValueError(f"unknown DVH mechanisms: {sorted(unknown)}")
    dropped: List[str] = []
    granted = requested
    for mech in DVH_MECHANISMS:
        if not getattr(granted, mech):
            continue
        dep = _DEPENDS_ON.get(mech)
        if mech in faulted or (dep is not None and not getattr(granted, dep)):
            granted = granted.with_(**{mech: False})
            dropped.append(mech)
    return granted, dropped


def fallback_io_model(io_model: str, features: DvhFeatures) -> str:
    """The I/O model a stack can actually run after negotiation:
    virtual-passthrough falls back to the paravirtual virtio cascade
    when the ``virtual_passthrough`` capability did not negotiate."""
    if io_model == "vp" and not features.virtual_passthrough:
        return "virtio"
    return io_model
