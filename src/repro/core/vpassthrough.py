"""Virtual-passthrough (§3.1, Figures 2c/3b, recursive form §3.5/Figure 6).

Assign a *virtual* I/O device — provided in software by the host
hypervisor — to a nested VM:

1. L0 provides the virtio device plus a virtual IOMMU to the L1 guest
   hypervisor (a VM that "thinks it has sufficient hardware support for
   the passthrough model").
2. Each intervening guest hypervisor runs its ordinary passthrough
   framework: unbind the device, program the (virtual) IOMMU it was given
   with mappings from the next level's physical addresses, and — except
   for the last one — expose a virtual IOMMU of its own upward.
3. The net result is a shadow table from leaf-VM physical addresses to
   host addresses, held by the L1 virtual IOMMU (Figure 6); the host's
   vhost backend uses it for every DMA.

No physical IOMMU or SR-IOV is required, the device remains fully
interposable (so migration keeps working, §3.6), and the nested VM needs
nothing beyond the normal virtio driver.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.devices.virtio import VirtioDevice
from repro.hw.ept import PageTable, Perm
from repro.hw.ops import ExitReason
from repro.hv.passthrough import dma_pool_pfns, resolve_many_through_chain
from repro.hv.viommu import VirtualIommu

__all__ = [
    "VirtualPassthroughAssignment",
    "assign_virtual_device",
    "populate_chain_epts",
    "register_ownership",
]


def register_ownership(registry) -> None:
    """Claim ``MMIO`` routing: a device provided by level *p* is emulated
    at level *p* even when accessed from a deeper nested VM (§3.1) — the
    doorbell write short-circuits straight to the provider.  Devices with
    no provider (plain emulated MMIO) belong to the VM's own manager."""

    def claim(vcpu, exit_) -> int:
        device = exit_.info.get("device")
        provider = getattr(device, "provider_level", None)
        if provider is not None:
            return provider
        return vcpu.level - 1

    registry.claim_ownership(ExitReason.MMIO, claim)


class VirtualPassthroughAssignment:
    """The result of assigning an L0-provided device to a nested VM."""

    def __init__(
        self,
        device: VirtioDevice,
        leaf_vm,
        viommus: List[VirtualIommu],
        shadow: PageTable,
    ) -> None:
        self.device = device
        self.leaf_vm = leaf_vm
        #: One virtual IOMMU per intervening hypervisor (L1..Ln-1's views).
        self.viommus = viommus
        #: The composed leaf-gpa -> host table (held by the L1 vIOMMU).
        self.shadow = shadow

    def translate(self, addr: int, write: bool = False) -> int:
        """Host-side DMA translation through the shadow table."""
        return self.shadow.translate_addr(
            addr, Perm.W if write else Perm.R
        )


def assign_virtual_device(
    machine,
    device: VirtioDevice,
    leaf_vm,
    posted_interrupts: bool = False,
    pfns: Optional[List[int]] = None,
) -> VirtualPassthroughAssignment:
    """Perform the virtual-passthrough assignment (setup time).

    ``device`` must be provided by L0 (``provider_level == 0``) — that is
    the defining property of virtual-passthrough: the device the nested VM
    ends up driving is the host hypervisor's.
    """
    if device.provider_level != 0:
        raise ValueError(
            "virtual-passthrough assigns devices provided by the host "
            f"hypervisor; {device.name} is provided by "
            f"L{device.provider_level}"
        )
    l0 = machine.host_hv
    costs = machine.costs
    if pfns is None:
        pfns = dma_pool_pfns()

    # Ensure the chain's EPTs cover the DMA pool (the guest OS allocated
    # these pages long ago; faults would have populated them on demand).
    populate_chain_epts(leaf_vm, pfns)

    # One virtual IOMMU per hypervisor between L0 and the leaf.
    viommus: List[VirtualIommu] = []
    vm = leaf_vm.manager.vm  # VM the leaf's manager runs in (None for L1 mgr)
    hv = leaf_vm.manager
    while hv is not None and hv.level >= 1:
        viommu = VirtualIommu(
            f"viommu-L{hv.level}",
            provider_hv=hv.level - 1,
            posted_interrupts=posted_interrupts,
        )
        if hv.vm is not None:
            hv.vm.bus.plug(viommu)
        viommus.append(viommu)
        hv = hv.vm.manager if hv.vm is not None else None
    viommus.reverse()  # innermost last

    # Each guest hypervisor programs the vIOMMU it was given with the
    # next level's mappings; the composed result is the shadow table.
    shadow = PageTable(name=f"vp-shadow:{device.name}")
    levels = leaf_vm.level
    shadow.map_many_pairs(
        pfns, resolve_many_through_chain(leaf_vm, pfns), Perm.RW
    )
    machine.metrics.charge(
        "setup", costs.shadow_iommu_map_page * (levels - 1) * len(pfns)
    )
    if viommus:
        viommus[0].shadow_tables[device.bdf] = shadow

    # The last-level hypervisor assigns the device: BAR stays *trapping*
    # (the device is virtual — doorbells must reach L0), the device shows
    # up on the leaf's bus, and the leaf just binds its virtio driver.
    device.assigned_to = leaf_vm
    if device not in list(leaf_vm.bus.enumerate()):
        leaf_vm.bus.devices.append(device)
    return VirtualPassthroughAssignment(device, leaf_vm, viommus, shadow)


def populate_chain_epts(leaf_vm, pfns: List[int]) -> None:
    """Map pool pages at every level: level-m pfn p maps to parent pfn
    p + m * stride (distinct per level, so translation bugs surface)."""
    stride = 1 << 8
    vm = leaf_vm
    while vm is not None:
        # The leaf-pfn -> level-m-pfn offset depends only on the levels,
        # not on the pfn: compute it once per level, not once per page.
        offset = _chain_pfn(leaf_vm, vm, 0, stride)
        if offset:
            keys = [pfn + offset for pfn in pfns]
        else:
            keys = pfns
        vm.ept.map_many_if_absent(keys, vm.level * stride, Perm.RW)
        vm = vm.manager.vm if vm.manager is not None else None


def _chain_pfn(leaf_vm, vm, pfn: int, stride: int) -> int:
    """What leaf pfn ``pfn`` looks like at level ``vm.level``."""
    offset = 0
    level = leaf_vm.level
    while level > vm.level:
        offset += level * stride
        level -= 1
    return pfn + offset
