"""DVH migration (§3.6): live migration of VMs and nested VMs.

Because DVH virtual hardware is software, the host hypervisor can fully
encapsulate a VM's state — including a nested VM using
virtual-passthrough — and migrate it.  Physical device passthrough, by
contrast, couples the VM to hardware and blocks migration entirely (the
key trade-off the paper's introduction describes).

Two migration scopes:

* **L1 VM** (with everything inside it, nested VMs included): from the
  host hypervisor's perspective this is ordinary live migration — DVH
  adds only a little extra virtual-hardware state (virtual timer value,
  VCIMT address) to save and restore.
* **Nested VM alone**: the guest hypervisor migrates its VM.  With
  virtual-passthrough it cannot see the device state or the pages the
  device DMAs into, so the paper defines a new **PCI migration
  capability**: control registers through which the guest hypervisor
  asks the host to capture device state to a given location and to log
  DMA-dirtied pages — standard PCI capability plumbing, so any guest
  hypervisor can interoperate with any host hypervisor.

The pre-copy algorithm is the standard one the paper relies on: copy all
pages, then iteratively re-copy dirtied pages until the remainder fits in
the downtime budget, then stop-and-copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Set

from repro.hw.mem import PAGE_SIZE, DirtyLog
from repro.hw.pci import Capability, CapabilityId, PciDevice
from repro.hw.vmx import VmcsField
from repro.hv.passthrough import MigrationNotSupported

__all__ = [
    "MigrationResult",
    "MigrationError",
    "LiveMigration",
    "add_migration_capability",
    "capture_device_state",
    "set_device_dirty_logging",
    "MigrationNotSupported",
]


class MigrationError(RuntimeError):
    """A migration failed: the wire stayed down past the retry budget,
    or dirty pages did not converge within the round budget while a hard
    downtime limit was set.  Distinct from
    :class:`MigrationNotSupported`, which means migration could never
    have been attempted."""

#: Memory-footprint divisor: the simulated transfer moves 1/512 of the
#: configured VM memory (so a 12 GB nested VM transfers 24 MB of
#: simulated state).  Migration *ratios* — the paper's reported result —
#: are preserved; absolute times scale with this constant.
FOOTPRINT_DIVISOR = 512
#: Fixed switch-over cost (final handshake, resume on destination).
SWITCHOVER_CYCLES = 2_000_000


# ----------------------------------------------------------------------
# The PCI migration capability (new in the paper)
# ----------------------------------------------------------------------
def add_migration_capability(device: PciDevice) -> Capability:
    """Attach the paper's migration capability to a (virtual) device.

    Registers: ``state_addr`` (where to capture device state),
    ``dirty_log_addr`` (where to log DMA-dirtied pages), and ``ctrl``
    (capture / log-enable commands).
    """
    cap = Capability(
        CapabilityId.MIGRATION,
        {"ctrl": 0, "state_addr": 0, "dirty_log_addr": 0},
    )
    device.add_capability(cap)
    return cap


def capture_device_state(device: PciDevice, backend) -> int:
    """Guest hypervisor asks the host (via the capability) to capture the
    virtual device's state; returns its size in bytes.  The state is the
    host's own encapsulation format — the guest hypervisor "simply
    transfers the device state to the destination and does not need to
    interpret it" (§3.6)."""
    cap = device.find_capability(CapabilityId.MIGRATION)
    if cap is None:
        raise MigrationNotSupported(
            f"{device.name} has no migration capability"
        )
    cap.registers["ctrl"] |= 0x1  # capture command
    # Ring indices, descriptor state, MSI config: a few KB.
    queues = len(getattr(device, "queues", [])) or 1
    return 2048 + 512 * queues


def set_device_dirty_logging(device: PciDevice, backend, log: Optional[DirtyLog]) -> None:
    """Enable/disable DMA dirty-page logging through the capability.
    The host implements it with the logging it already does as part of
    I/O interposition — no additional traps (§3.6)."""
    cap = device.find_capability(CapabilityId.MIGRATION)
    if cap is None:
        raise MigrationNotSupported(
            f"{device.name} has no migration capability"
        )
    cap.registers["ctrl"] = (cap.registers["ctrl"] | 0x2) if log else (
        cap.registers["ctrl"] & ~0x2
    )
    backend.dirty_log = log


# ----------------------------------------------------------------------
# Live migration
# ----------------------------------------------------------------------
@dataclass
class MigrationResult:
    """Outcome of one live migration."""

    vm_name: str
    total_s: float
    downtime_s: float
    rounds: int
    bytes_transferred: int
    device_state_bytes: int
    dvh_state_saved: bool
    #: Transfer attempts repeated after a link flap (0 on a clean wire).
    retries: int = 0


class LiveMigration:
    """Live pre-copy migration of one VM between identical hosts.

    ``devices`` lists virtual devices whose state/dirty pages must come
    from the host through the migration capability (virtual-passthrough
    devices when migrating a nested VM alone).
    """

    def __init__(
        self,
        machine,
        vm,
        devices: Optional[List[PciDevice]] = None,
        bandwidth_bps: Optional[float] = None,
        downtime_target_s: float = 0.03,
        max_rounds: int = 30,
        downtime_limit_s: Optional[float] = None,
        max_retries: int = 5,
        retry_backoff_cycles: int = 200_000,
        channel=None,
    ) -> None:
        self.machine = machine
        self.vm = vm
        self.devices = devices or []
        #: Optional transport the pre-copy bytes actually travel over
        #: (duck-typed: ``transfer(nbytes) -> Generator`` plus a
        #: ``transfer_cycles(nbytes)`` estimator and a ``retries``
        #: counter).  The cluster fabric channel
        #: (:class:`repro.cluster.orchestrator.FabricChannel`) plugs in
        #: here so cross-host dirty-page traffic consumes real simulated
        #: link bandwidth; when None the flat ``bandwidth_bps`` wire is
        #: used, exactly as before.
        self.channel = channel
        self.bandwidth_bps = (
            bandwidth_bps if bandwidth_bps is not None else machine.costs.migration_bps
        )
        self.downtime_target_s = downtime_target_s
        self.max_rounds = max_rounds
        #: Hard downtime bound (opt-in): when set and pre-copy fails to
        #: converge within ``max_rounds``, raise :class:`MigrationError`
        #: instead of eating an unbounded stop-and-copy.
        self.downtime_limit_s = downtime_limit_s
        self.max_retries = max_retries
        self.retry_backoff_cycles = retry_backoff_cycles
        #: Transfer attempts repeated after link flaps (see faults).
        self.retries = 0

    # ------------------------------------------------------------------
    def _transfer_cycles(self, nbytes: int) -> int:
        if self.channel is not None:
            return self.channel.transfer_cycles(nbytes)
        sim = self.machine.sim
        return max(1, sim.cycles(nbytes * 8 / self.bandwidth_bps))

    def _transfer(self, nbytes: int) -> Generator:
        """Move ``nbytes`` over the migration wire.

        Consults the machine's attached fault injector (if any) for link
        flaps, packet loss and bandwidth degradation.  A down link is
        retried with bounded exponential backoff — each successful retry
        is a counted recovery; exhausting the budget raises
        :class:`MigrationError` (the round stays resumable: dirty state
        survives in the logs)."""
        if self.channel is not None:
            # The channel owns its transport faults (fabric partitions,
            # bandwidth collapse) and its own retry/backoff budget.
            yield from self.channel.transfer(nbytes)
            return
        faults = getattr(self.machine, "faults", None)
        if faults is None:
            yield self._transfer_cycles(nbytes)
            return
        attempt = 0
        backoff = self.retry_backoff_cycles
        while faults.migration_link_down():
            attempt += 1
            if attempt > self.max_retries:
                raise MigrationError(
                    f"{self.vm.name}: migration link down after "
                    f"{self.max_retries} retries"
                )
            yield backoff
            backoff = min(backoff * 2, 16 * self.retry_backoff_cycles)
        if attempt:
            self.retries += attempt
            self.machine.metrics.record_recovery("migration_retry", attempt)
        # Lost packets are retransmitted: more bytes on the wire.
        loss = max(0.0, faults.migration_loss_rate())
        effective = int(nbytes * (1.0 + loss))
        cycles = self._transfer_cycles(effective)
        # Degraded bandwidth stretches the same transfer.
        factor = max(0.05, faults.migration_bandwidth_factor())
        if factor != 1.0:
            cycles = max(1, int(cycles / factor))
        yield cycles

    def _footprint_pages(self) -> int:
        base = self.vm.memory.size_bytes // FOOTPRINT_DIVISOR // PAGE_SIZE
        return base + len(self.vm.memory.touched_pages)

    def _track_dirty(self, npages: int) -> Generator:
        """Charge the cycles dirty-page *tracking* cost for ``npages``
        freshly drained pages (see :mod:`repro.ooh.pricing`).

        Active only when the machine carries an OoH grant table and the
        migrating VM is nested (its dirty faults would otherwise be the
        guest hypervisor's to take): without a dirty grant each page is
        a forwarded write-protection fault chain; with ``dirty_logging``
        it is one L0 round trip; with ``dirty_ring`` only buffer
        flushes exit.  A machine without a grant table (``ooh is
        None``) charges nothing — byte-identical to the pre-OoH path.
        """
        if npages <= 0:
            return
        ooh = getattr(self.machine, "ooh", None)
        if ooh is None or getattr(self.vm, "level", 1) < 2:
            return
        from repro.ooh.pricing import dirty_tracking_cycles

        hv_stack = self.machine.hv_stack
        ghv = hv_stack[1] if len(hv_stack) > 1 else self.machine.host_hv
        mode = ooh.dirty_mode()
        cycles = dirty_tracking_cycles(
            self.machine.costs, ghv.profile, npages, mode
        )
        ooh.record(ooh.dirty_feature(), mode is not None, npages)
        self.machine.metrics.charge("dirty_tracking", cycles)
        yield cycles

    def _teardown(self, cpu_log: DirtyLog, backends) -> None:
        """Release every resource the migration holds: detach the CPU
        dirty log, disable device dirty logging, resume paused backends.

        Idempotent, and run from ``run``'s ``finally`` so it covers
        *every* exit path — success, non-convergence abort, a
        :class:`MigrationError` from the wire mid-flight, and process
        cancellation.  Before this ran unconditionally, a fabric
        partition during stop-and-copy left the tenant's virtio backends
        paused forever and each orchestrator retry stacked a fresh dirty
        log on top of the leaked one."""
        self.vm.memory.detach_dirty_log(cpu_log)
        for device, backend in backends:
            set_device_dirty_logging(device, backend, None)
            if backend.paused:
                backend.resume()

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The migration process (drive with ``sim.run_process`` or spawn
        alongside a running workload).  Returns a MigrationResult."""
        if getattr(self.vm, "hardware_coupled", False):
            raise MigrationNotSupported(
                f"{self.vm.name} uses physical device passthrough"
            )
        sim = self.machine.sim
        audit = getattr(self.machine, "audit", None)
        start = sim.now
        total_bytes = 0

        # Hook up dirty logging: CPU writes via the VM's memory space,
        # device DMA via the migration capability (virtual-passthrough)
        # or the manager's own interposition (regular virtio).
        cpu_log = DirtyLog(f"{self.vm.name}-cpu")
        self.vm.memory.attach_dirty_log(cpu_log)
        device_logs: List[DirtyLog] = []
        backends = []
        for device in self.devices:
            backend = self.machine.host_hv.backends.get(device)
            if backend is None:
                continue
            log = DirtyLog(f"{device.name}-dma")
            set_device_dirty_logging(device, backend, log)
            device_logs.append(log)
            backends.append((device, backend))
        if audit is not None:
            audit.on_migration_start(self.vm, cpu_log, device_logs, backends)

        # Fast-forward: drop any steady-state fingerprints (the dirty
        # logs just changed what an epoch observes) and veto workload
        # skipping for the duration — a skipped epoch would lose the
        # re-dirty records pre-copy rounds must drain.  The pre-copy
        # chunk stream itself exempts this veto (see FabricChannel).
        sim.ff.perturb("migration")
        self.machine.ff_migrations += 1

        outcome = "failed"
        try:
            result = yield from self._run_body(
                sim, audit, start, total_bytes, cpu_log, device_logs, backends
            )
            outcome = "ok"
            return result
        finally:
            self.machine.ff_migrations -= 1
            sim.ff.perturb("migration-end")
            self._teardown(cpu_log, backends)
            if audit is not None:
                audit.on_migration_end(
                    self.vm, outcome, cpu_log, device_logs, backends
                )

    def _run_body(
        self, sim, audit, start, total_bytes, cpu_log, device_logs, backends
    ) -> Generator:
        """Pre-copy rounds, stop-and-copy, switch-over.  Resource
        teardown lives in ``run``'s ``finally``, never here."""
        # DVH virtual-hardware state to save (§3.6): the virtual timer
        # value and the VCIMT address ride along with the VM state.
        dvh_state_saved = False
        for vcpu in self.vm.vcpus:
            if vcpu.vmcs.controls.virtual_timer_enable:
                vcpu.vmcs.write(
                    VmcsField.VIRTUAL_TIMER_DEADLINE, vcpu.lapic.timer_deadline
                )
                dvh_state_saved = True
            if vcpu.vmcs.read(VmcsField.VCIMTAR):
                dvh_state_saved = True

        # --- Round 0: full copy of the working footprint -------------
        pages = self._footprint_pages()
        nbytes = pages * PAGE_SIZE
        total_bytes += nbytes
        yield from self._transfer(nbytes)
        rounds = 1

        # --- Iterative pre-copy --------------------------------------
        # Pages drained for the convergence check but not re-copied yet
        # must carry into stop-and-copy, or they'd be silently lost.
        pending: Set[int] = set()
        converged = False
        while rounds < self.max_rounds:
            drained = set(cpu_log.drain())
            for log in device_logs:
                drained |= log.drain()
            pending |= drained
            yield from self._track_dirty(len(drained))
            if audit is not None and drained:
                audit.on_pages_drained(self.vm, drained)
            nbytes = len(pending) * PAGE_SIZE
            # Judge convergence against the transport that will actually
            # carry the stop-and-copy: an attached channel (a possibly
            # degraded fabric path) rather than the flat wire rate.
            if sim.seconds(self._transfer_cycles(nbytes)) <= self.downtime_target_s:
                converged = True
                break
            total_bytes += nbytes
            rounds += 1
            if audit is not None and pending:
                audit.on_pages_copied(self.vm, pending)
            pending = set()
            yield from self._transfer(nbytes)

        # --- Stop and copy --------------------------------------------
        for _device, backend in backends:
            backend.pause()
        drained = set(cpu_log.drain())
        for log in device_logs:
            drained |= log.drain()
        # Tracking cost of this batch accrued while the VM was still
        # running — charge it before the downtime clock starts.
        yield from self._track_dirty(len(drained))
        downtime_start = sim.now
        if audit is not None and drained:
            audit.on_pages_drained(self.vm, drained)
        dirty = pending | drained
        nbytes = len(dirty) * PAGE_SIZE
        device_state = 0
        for device, backend in backends:
            device_state += capture_device_state(device, backend)
        if self.downtime_limit_s is not None and not converged:
            projected_s = sim.seconds(
                self._transfer_cycles(nbytes + device_state) + SWITCHOVER_CYCLES
            )
            if projected_s > self.downtime_limit_s:
                # Abort: the source VM keeps running at full speed
                # (teardown in ``run``'s finally detaches the logs and
                # resumes the backends).
                raise MigrationError(
                    f"{self.vm.name}: dirty pages did not converge within "
                    f"{self.max_rounds} rounds (projected downtime "
                    f"{projected_s * 1e3:.1f} ms > limit "
                    f"{self.downtime_limit_s * 1e3:.1f} ms)"
                )
        total_bytes += nbytes + device_state
        yield from self._transfer(nbytes + device_state)
        yield SWITCHOVER_CYCLES
        downtime = sim.now - downtime_start
        if audit is not None and dirty:
            audit.on_pages_copied(self.vm, dirty)

        return MigrationResult(
            vm_name=self.vm.name,
            total_s=sim.seconds(sim.now - start),
            downtime_s=sim.seconds(downtime),
            rounds=rounds,
            bytes_transferred=total_bytes,
            device_state_bytes=device_state,
            dvh_state_saved=dvh_state_saved,
            retries=self.retries + (
                getattr(self.channel, "retries", 0) if self.channel else 0
            ),
        )
