"""Virtual idle (§3.4).

Uses *existing* architectural support in a new way: the host hypervisor
keeps trapping the HLT instruction, but every guest hypervisor clears
HLT-exiting in the VMCS it keeps for its nested VM.  A nested VM executing
HLT then traps only to L0 (which can see, via the guest hypervisor's
configuration in the VMCS, that no forwarding is needed), so entering and
leaving low-power mode costs the same as for a non-nested VM.

Unlike disabling HLT traps everywhere or polling in the guest, physical
CPU cycles are not wasted: the host really halts the CPU until an event
arrives.

Policy: a guest hypervisor only engages virtual idle when it has no other
runnable nested VMs (§3.4's last paragraph) — otherwise it keeps the trap
so it can schedule a sibling.
"""

from __future__ import annotations

from typing import List

from repro.hw.ops import ExitReason

__all__ = [
    "enable_virtual_idle",
    "update_virtual_idle_policy",
    "register_ownership",
    "run_poll_idle_loop",
]


def run_poll_idle_loop(stack, window_s: float = 0.0005, polls: int = 200) -> float:
    """The poll-in-the-guest idle alternative §3.4 rejects: instead of
    halting, the guest spins for a fixed window, checks for work, and
    spins again — burning real CPU the whole time (charged to the
    ``guest_work`` cycle category so the waste is visible in reports).

    Each window is one epoch of the ``vidle:poll`` fast-forward source:
    the loop is perfectly periodic, so the engine macro-skips it after
    the confirmation window.  Returns total polled cycles.
    """
    sim = stack.sim
    metrics = stack.machine.metrics
    window = sim.cycles(window_s)

    def main():
        src = sim.ff.source("vidle:poll")
        start = sim.now
        left = polls
        while left > 0:
            metrics.charge("guest_work", window)
            yield window
            left -= 1
            if left:
                left -= src.observe(left)
        return sim.now - start

    return sim.run_process(main(), "poll-idle")


def register_ownership(registry) -> None:
    """Claim ``HLT`` routing: L0 handles the HLT only if *no* intervening
    hypervisor kept HLT-exiting set in its vmcs12; otherwise the
    innermost one that traps HLT owns it (§3.4)."""

    def claim(vcpu, exit_) -> int:
        for m in range(vcpu.level - 1, 0, -1):
            if vcpu.chain_vcpu(m + 1).vmcs.controls.hlt_exiting:
                return m
        return 0

    registry.claim_ownership(ExitReason.HLT, claim)


def enable_virtual_idle(hv_stack: List, leaf_vm) -> bool:
    """Clear HLT-exiting in every intervening hypervisor's vmcs12 along
    the chain (subject to the §3.4 scheduling policy)."""
    enabled_all = True
    vm = leaf_vm
    while vm is not None and vm.level >= 2:
        manager = vm.manager
        if manager.other_runnable_guests == 0:
            for vcpu in vm.vcpus:
                vcpu.vmcs.controls.hlt_exiting = False
        else:
            enabled_all = False
        vm = manager.vm
    return enabled_all


def update_virtual_idle_policy(hv, leaf_vm) -> None:
    """Re-evaluate the policy when the hypervisor's run queue changes:
    engage virtual idle only with no other runnable nested VMs."""
    engage = hv.other_runnable_guests == 0
    for vcpu in leaf_vm.vcpus:
        vcpu.vmcs.controls.hlt_exiting = not engage
