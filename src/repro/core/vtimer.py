"""Virtual timers (§3.2).

A per-vCPU virtual LAPIC timer provided in software by the host
hypervisor, appearing to guest hypervisors as an additional hardware
timer capability: one discovery bit in the VMX capability register, one
enable bit in the VM-execution controls.  When every intervening
hypervisor sets the enable bit for its guest (the §3.5 AND rule), a
nested VM's timer programming exits go straight to L0, which emulates the
timer with an hrtimer using the *combined* TSC offset of all levels.

The emulation lives in :mod:`repro.hv.kvm` (the registered
``APIC_TIMER`` handlers); routing is this module's
:func:`register_ownership` claim on the dispatch registry.  This module
is otherwise the guest-hypervisor-side configuration: discovery,
enablement, and save/restore on nested VM switch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.ops import ExitReason
from repro.hw.vmx import VmcsField

__all__ = [
    "enable_virtual_timers",
    "save_virtual_timer",
    "restore_virtual_timer",
    "register_ownership",
    "run_tick_loop",
]


def register_ownership(registry) -> None:
    """Claim ``APIC_TIMER`` routing: the §3.5 recursive-enable walk over
    the virtual-timer enable bit (a direct control-field read, not a
    string-matched attribute name)."""
    from repro.hv.dispatch import recursive_dvh_owner

    registry.claim_ownership(
        ExitReason.APIC_TIMER,
        lambda vcpu, exit_: recursive_dvh_owner(
            vcpu, lambda controls: controls.virtual_timer_enable
        ),
    )


def enable_virtual_timers(hv_stack: List, leaf_vm) -> bool:
    """Each guest hypervisor on the chain discovers the capability from
    the level below and sets the enable bit for its guest's vCPUs.

    Returns whether the feature ended up enabled end-to-end (it is not if
    any hypervisor on the chain lacks the capability — §3.5: the bits
    combine with AND).
    """
    enabled_all = True
    vm = leaf_vm
    # Walk from the leaf's manager down to L1's manager (L0 provides).
    while vm is not None and vm.level >= 2:
        manager = vm.manager  # hypervisor at vm.level - 1
        if manager.capability.virtual_timer:
            for vcpu in vm.vcpus:
                vcpu.vmcs.controls.virtual_timer_enable = True
        else:
            enabled_all = False
        vm = manager.vm
    return enabled_all


def run_tick_loop(stack, interval_s: float = 0.001, ticks: int = 200) -> float:
    """A guest periodic-timer tick loop (the classic 1 kHz guest tick):
    program the LAPIC timer one interval ahead, halt until it fires,
    repeat.  Exercises the full §3.2 programming path each tick — on a
    DVH stack one L0 exit per programming, on a trap-forward stack the
    whole forwarding chain.

    The loop registers itself as the ``vtimer:tick`` fast-forward
    source: ticks are strictly periodic with an identical counter delta,
    so after the confirmation window the engine collapses the remaining
    ticks into macro-events.  Returns average cycles per tick.
    """
    from repro.hw.lapic import TIMER_VECTOR

    ctx = stack.ctx(0)
    sim = stack.sim
    interval = sim.cycles(interval_s)

    def main():
        src = sim.ff.source("vtimer:tick")
        start = sim.now
        left = ticks
        while left > 0:
            yield from ctx.program_timer(ctx.read_tsc() + interval, TIMER_VECTOR)
            yield from ctx.wait_for_interrupt()
            left -= 1
            if left:
                left -= src.observe(left)
        return (sim.now - start) / ticks

    return sim.run_process(main(), "vtimer-tick")


def save_virtual_timer(vcpu) -> Optional[int]:
    """Guest hypervisor saves a nested VM's virtual-timer state when
    switching away from it (§3.2): read the armed deadline."""
    deadline = vcpu.lapic.timer_deadline
    vcpu.vmcs.write(VmcsField.VIRTUAL_TIMER_DEADLINE, deadline)
    return deadline


def restore_virtual_timer(vcpu) -> None:
    """Restore a previously saved virtual-timer deadline when resuming a
    nested VM."""
    deadline = vcpu.vmcs.read(VmcsField.VIRTUAL_TIMER_DEADLINE)
    if deadline:
        vcpu.lapic.arm_timer(deadline, vcpu.lapic.timer_vector)
