"""Virtual IPIs (§3.3).

Two pieces of virtual hardware: a per-vCPU virtual ICR (so a nested VM's
ICR writes are handled by L0 directly) and the **virtual CPU interrupt
mapping table** (VCIMT) — a per-VM structure in guest-hypervisor memory
mapping nested-VM vCPU numbers to posted-interrupt descriptors, registered
with the host through the VCIMTAR register.  The host uses it to find the
destination of a nested VM's IPI without guest-hypervisor intervention
(Figure 5).

Send-side emulation lives in :mod:`repro.hv.kvm` (the registered
``APIC_ICR`` handlers and ``_vcimt_lookup``); routing is this module's
:func:`register_ownership` claim on the dispatch registry.  This module
is otherwise the guest-hypervisor-side setup: build the table in its own
memory and program the VCIMTAR.
"""

from __future__ import annotations

from typing import List

from repro.hw.ops import ExitReason
from repro.hw.vmx import VCIMT_ENTRY_SIZE, VmcsField

__all__ = ["setup_virtual_ipis", "DEFAULT_VCIMT_BASE", "register_ownership"]


def register_ownership(registry) -> None:
    """Claim ``APIC_ICR`` routing: posted-interrupt *notification*
    requests always belong to the sender's own manager (Figure 4 step 4),
    everything else follows the §3.5 walk over the virtual-IPI enable
    bit."""
    from repro.hv.dispatch import recursive_dvh_owner

    def claim(vcpu, exit_) -> int:
        if exit_.info.get("notify_only"):
            # A guest hypervisor asking the CPU to send a
            # posted-interrupt notification on its behalf: its own
            # manager emulates that.
            return vcpu.level - 1
        return recursive_dvh_owner(
            vcpu, lambda controls: controls.virtual_ipi_enable
        )

    registry.claim_ownership(ExitReason.APIC_ICR, claim)

#: Guest-physical address guest hypervisors conventionally place the
#: table at in this reproduction.
DEFAULT_VCIMT_BASE = 0x7F00_0000


def setup_virtual_ipis(hv_stack: List, leaf_vm, table_base: int = DEFAULT_VCIMT_BASE) -> bool:
    """Configure virtual IPIs for a (possibly deeply) nested VM.

    The leaf VM's manager builds the VCIMT in its own memory: one entry
    per leaf vCPU pointing at that vCPU's posted-interrupt descriptor.
    Intervening hypervisors translate and re-register the information
    level by level (§3.5); the net effect visible to L0 is a valid
    VCIMTAR in the merged VMCS.  Returns whether the feature is enabled
    end-to-end.
    """
    manager = leaf_vm.manager
    if manager.level == 0:
        return False  # not nested: virtual IPIs are a nested-VM feature
    # Check the whole chain advertises the capability (AND rule, §3.5).
    vm = leaf_vm
    while vm is not None and vm.level >= 2:
        if not vm.manager.capability.virtual_ipi:
            return False
        vm = vm.manager.vm
    # The manager writes the table into its own memory.  Entries map the
    # destination vCPU number to the PI descriptor (which embeds the
    # physical-CPU destination), exactly Figure 5's layout.
    manager_vm = manager.vm
    for vcpu in leaf_vm.vcpus:
        manager_vm.memory.write(
            table_base + VCIMT_ENTRY_SIZE * vcpu.index, vcpu
        )
    # Enable bit + table address in each leaf vCPU's vmcs12, and on every
    # intervening level (recursive enablement).
    vm = leaf_vm
    while vm is not None and vm.level >= 2:
        for vcpu in vm.vcpus:
            vcpu.vmcs.controls.virtual_ipi_enable = True
            if vm is leaf_vm:
                vcpu.vmcs.write(VmcsField.VCIMTAR, table_base)
        vm = vm.manager.vm
    leaf_vm.vcimtar = table_base
    return True
