"""repro.audit — opt-in runtime invariant auditing.

The simulator's measurements are only as trustworthy as the state they
are computed from.  A retry path that leaks a dirty log or leaves a
backend paused does not crash anything — it silently corrupts every
*later* measurement on the same shared clock, exactly the
state-conservation bug class NecoFuzz hunts in real nested stacks.
This package is the machinery that *finds* such bugs at runtime:

* :class:`~repro.audit.auditor.Auditor` — a passive observer that
  attaches to a machine, stack, or cluster the same way a
  :class:`~repro.faults.FaultInjector` does.  Instrumented sites
  (``LiveMigration``, the cluster orchestrator) consult
  ``machine.audit`` through a ``getattr(..., None)`` guard, so a run
  without an auditor pays a single attribute miss and is byte-identical
  to an un-audited build.
* :mod:`~repro.audit.checks` — pure functions over finished runs:
  resource-lifecycle audits (no :class:`~repro.hw.mem.DirtyLog` left
  attached, no backend left paused), fabric byte conservation
  (tx = rx + undeliverable; ``cross_host`` table vs
  ``Wire.bytes_carried``), and span-vs-Metrics cycle reconciliation.
  The trap-chain fuzzer folds the lifecycle checks into its per-episode
  invariants.
* :mod:`~repro.audit.runner` — ``python -m repro audit`` / ``make
  audit``: drives the migration fault matrix, the cluster failure
  scenarios, a traced microbenchmark, and a fuzz campaign with the
  auditor enabled, and exits non-zero on any violation.

Everything here observes; nothing mutates simulated state, so enabling
the auditor never changes what a run computes — only whether it is
allowed to pass.
"""

from __future__ import annotations

from repro.audit.auditor import AuditReport, Auditor, AuditViolation
from repro.audit.checks import (
    fabric_conservation_violations,
    lifecycle_violations,
    span_reconciliation_violations,
)

__all__ = [
    "Auditor",
    "AuditReport",
    "AuditViolation",
    "lifecycle_violations",
    "fabric_conservation_violations",
    "span_reconciliation_violations",
]
