"""``python -m repro audit`` — drive the fault matrix under audit.

Five scenario families, every one with an :class:`~repro.audit.Auditor`
attached (and therefore every lifecycle/conservation invariant armed):

1. **Single-machine migration matrix** — clean wire plus each
   migration-wire fault class, across the key stacks, including the
   non-convergence abort path (hard downtime limit + a firehose
   dirtier), which must raise :class:`MigrationError` *and* leave zero
   leaked state behind;
2. **Cluster failure matrix** — cross-host migration clean, through a
   healing partition (retries), through a permanent partition (failed
   after the attempt budget), and an ``evacuate()`` under a fabric
   fault plan.  Fabric byte conservation is checked at the end of each;
3. **Traced microbenchmark** — span-level cycle attribution reconciled
   against Metrics (cycle conservation per exit chain);
4. **Generated scenarios** — a slice of the constrained-random
   scenario generator's output (:mod:`repro.scenarios`), covering both
   topologies and all three modeled architectures, audited end to end;
5. **Fuzz campaign** — the NecoFuzz-style trap-chain fuzzer, whose
   per-episode invariants now include the resource-lifecycle audits.

Reverting the migration-lifecycle fixes in
:mod:`repro.core.migration` turns scenario families 1 and 2 red (leaked
dirty logs, paused backends), which is the point: ``make audit`` is the
tripwire that keeps those bugs fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.audit.auditor import Auditor
from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration, MigrationError
from repro.hw.mem import PAGE_SIZE
from repro.hv.stack import StackConfig, build_stack

__all__ = ["AuditScenario", "AuditRun", "run_audit", "render_audit"]


@dataclass
class AuditScenario:
    """One audited scenario's outcome."""

    name: str
    violations: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class AuditRun:
    """Everything ``python -m repro audit`` produced."""

    seed: int
    scenarios: List[AuditScenario] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    @property
    def failures(self) -> List[AuditScenario]:
        return [s for s in self.scenarios if not s.ok]


# ----------------------------------------------------------------------
# Scenario family 1: single-machine migration matrix
# ----------------------------------------------------------------------
_STACKS = (
    ("L2", lambda: StackConfig(levels=2, io_model="virtio", workers=2)),
    (
        "L2+DVH",
        lambda: StackConfig(
            levels=2, io_model="vp", dvh=DvhFeatures.full(), workers=2
        ),
    ),
    ("L3", lambda: StackConfig(levels=3, io_model="virtio", workers=2)),
)


def _migration_wire_specs(now: int):
    from repro.faults.plan import FaultClass, FaultSpec

    return (
        ("clean", None),
        ("mig_bandwidth", FaultSpec(kind=FaultClass.MIG_BANDWIDTH, param=0.5)),
        (
            "mig_link_flap",
            FaultSpec(kind=FaultClass.MIG_LINK_FLAP, start=now, end=now + 700_000),
        ),
        ("mig_loss", FaultSpec(kind=FaultClass.MIG_LOSS, param=0.10)),
    )


def _spawn_firehose(stack, proc) -> None:
    """Re-dirty a 2000-page working set far faster than the wire drains
    it, so pre-copy can never converge."""
    ctx = stack.ctx(1)

    def firehose():
        i = 0
        while not proc.done:
            yield from ctx.compute(20_000)
            ctx.mem_write(0x1000_0000 + (i % 2_000) * PAGE_SIZE, PAGE_SIZE)
            i += 1

    stack.sim.spawn(firehose(), "firehose")


def _run_migration_matrix(seed: int) -> List[AuditScenario]:
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    scenarios: List[AuditScenario] = []
    for stack_name, factory in _STACKS:
        # Probe run: flap windows are anchored at the settled clock.
        probe = build_stack(factory())
        probe.settle()
        for spec_name, spec in _migration_wire_specs(probe.sim.now):
            auditor = Auditor()
            stack = build_stack(factory())
            stack.settle()
            auditor.attach_stack(stack)
            if spec is not None:
                FaultInjector(
                    stack.machine, FaultPlan([spec]), seed=seed
                ).attach(stack)
            devices = (
                [stack.net.device] if stack.config.io_model == "vp" else []
            )
            mig = LiveMigration(stack.machine, stack.leaf_vm, devices=devices)
            res = stack.sim.run_process(mig.run(), f"migrate-{spec_name}")
            report = auditor.finish()
            scenarios.append(
                AuditScenario(
                    name=f"migration/{stack_name}/{spec_name}",
                    violations=[str(v) for v in report.violations],
                    detail=f"rounds={res.rounds} retries={res.retries}",
                )
            )

    # The abort path: hard downtime limit + firehose => MigrationError,
    # and the audit must find nothing leaked afterwards.
    auditor = Auditor()
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full(), workers=2)
    )
    stack.settle()
    auditor.attach_stack(stack)
    backend_device = stack.net.device
    mig = LiveMigration(
        stack.machine,
        stack.leaf_vm,
        devices=[backend_device],
        max_rounds=3,
        downtime_limit_s=0.0005,
    )
    proc = stack.sim.spawn(mig.run(), "migration-abort")
    _spawn_firehose(stack, proc)
    violations: List[str] = []
    try:
        stack.sim.run()
        violations.append("non-convergence abort never raised MigrationError")
    except MigrationError:
        pass
    report = auditor.finish()
    violations.extend(str(v) for v in report.violations)
    scenarios.append(
        AuditScenario(name="migration/L2+DVH/abort", violations=violations)
    )

    # OoH grant revocation mid-migration: pre-copy starts with the
    # dirty_logging grant active, loses it to an ooh_grant_revoke fault
    # while rounds are still draining, and must finish on the forwarded
    # path with the fallback counted — and nothing leaked.
    from repro.faults.plan import FaultClass, FaultPlan, FaultSpec
    from repro.faults.injector import FaultInjector
    from repro.ooh.grants import GrantSet

    auditor = Auditor()
    stack = build_stack(
        StackConfig(
            levels=2, io_model="virtio", workers=2, ooh=GrantSet.migration()
        )
    )
    stack.settle()
    auditor.attach_stack(stack)
    FaultInjector(
        stack.machine,
        FaultPlan(
            [
                FaultSpec(
                    kind=FaultClass.OOH_GRANT_REVOKE,
                    start=stack.sim.now + 50_000,
                    mechanisms=("dirty_logging",),
                )
            ]
        ),
        seed=seed,
    ).attach(stack)
    mig = LiveMigration(stack.machine, stack.leaf_vm)
    res = stack.sim.run_process(mig.run(), "migrate-ooh-revoke")
    report = auditor.finish()
    violations = [str(v) for v in report.violations]
    ooh = stack.machine.ooh
    if ooh.revocations == 0:
        violations.append("ooh_grant_revoke fault never revoked the grant")
    if ooh.active("dirty_logging"):
        violations.append("dirty_logging grant still active after revocation")
    if stack.metrics.recoveries.get("ooh_fallback", 0) == 0:
        violations.append("ooh_fallback recovery not counted")
    scenarios.append(
        AuditScenario(
            name="migration/L2+OoH/grant-revoke",
            violations=violations,
            detail=f"rounds={res.rounds} revocations={ooh.revocations}",
        )
    )
    return scenarios


# ----------------------------------------------------------------------
# Scenario family 2: cluster failure matrix
# ----------------------------------------------------------------------
def _cluster_scenarios(seed: int) -> List[AuditScenario]:
    from repro.cluster import Cluster, TenantSpec
    from repro.faults.plan import FaultClass, FaultPlan, FaultSpec

    scenarios: List[AuditScenario] = []

    def other_host(cluster, tenant_name):
        src = cluster.host_of(tenant_name)
        return [h for h in cluster.hosts if h.name != src.name][0]

    def run(name: str, fault_plan, expect_error: bool, body: Callable):
        cluster = Cluster(
            num_hosts=2, seed=seed, policy="spread", fault_plan=fault_plan
        )
        auditor = Auditor().attach_cluster(cluster)
        cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
        violations: List[str] = []
        detail = ""
        try:
            detail = body(cluster)
            if expect_error:
                violations.append("expected MigrationError never raised")
        except MigrationError:
            if not expect_error:
                raise
        report = auditor.finish()
        violations.extend(str(v) for v in report.violations)
        scenarios.append(
            AuditScenario(name=name, violations=violations, detail=detail)
        )

    def migrate_body(cluster):
        record = cluster.migrate("t", other_host(cluster, "t").name)
        return (
            f"outcome={record.outcome} attempts={record.attempts} "
            f"retries={record.result.retries}"
        )

    run("cluster/clean", None, expect_error=False, body=migrate_body)
    run(
        "cluster/partition-heals",
        FaultPlan(
            [
                FaultSpec(
                    kind=FaultClass.FABRIC_PARTITION,
                    start=0,
                    end=50_000_000,
                    mechanisms=("host1",),
                )
            ]
        ),
        expect_error=False,
        body=migrate_body,
    )
    run(
        "cluster/partition-permanent",
        FaultPlan(
            [
                FaultSpec(
                    kind=FaultClass.FABRIC_PARTITION,
                    start=0,
                    end=None,
                    mechanisms=("host1",),
                )
            ]
        ),
        expect_error=True,
        body=migrate_body,
    )

    # Evacuation under a degraded, flapping fabric.
    cluster = Cluster(
        num_hosts=3,
        seed=seed,
        policy="spread",
        fault_plan=FaultPlan(
            [
                FaultSpec(
                    kind=FaultClass.FABRIC_PARTITION,
                    start=0,
                    end=40_000_000,
                    mechanisms=("host1",),
                ),
                FaultSpec(kind=FaultClass.FABRIC_DEGRADE, param=0.5),
            ]
        ),
    )
    auditor = Auditor().attach_cluster(cluster)
    from repro.cluster import TenantSpec as _Spec

    cluster.place(_Spec(name="a", io_model="vp", memory_gb=8))
    cluster.place(_Spec(name="b", io_model="virtio", memory_gb=8))
    for name in ("a", "b"):
        if cluster.host_of(name).name != "host0":
            tenant = cluster.host_of(name).evict(name)
            cluster.host("host0").adopt(tenant)
    records = cluster.orchestrator.evacuate("host0")
    report = auditor.finish()
    outcomes = ",".join(f"{r.tenant}:{r.outcome}" for r in records)
    scenarios.append(
        AuditScenario(
            name="cluster/evacuate-under-faults",
            violations=[str(v) for v in report.violations],
            detail=outcomes,
        )
    )
    return scenarios


# ----------------------------------------------------------------------
# Scenario family 3: traced microbenchmark (cycle conservation)
# ----------------------------------------------------------------------
def _traced_scenario(seed: int) -> AuditScenario:
    from repro.workloads.microbench import run_microbenchmark

    stack = build_stack(
        StackConfig(
            levels=2, io_model="vp", dvh=DvhFeatures.full(), seed=seed
        )
    )
    auditor = Auditor().attach_stack(stack, trace=True)
    cycles = run_microbenchmark(stack, "ProgramTimer", iterations=10)
    report = auditor.finish()
    return AuditScenario(
        name="trace/ProgramTimer",
        violations=[str(v) for v in report.violations],
        detail=f"{cycles:,.0f} cycles/op",
    )


# ----------------------------------------------------------------------
# Scenario family 4: fuzz campaign with lifecycle invariants
# ----------------------------------------------------------------------
def _fuzz_scenario(seed: int, episodes: int) -> AuditScenario:
    from repro.faults.fuzz import TrapChainFuzzer

    fuzzer = TrapChainFuzzer(seed=seed, episodes=episodes)
    campaign = fuzzer.run()
    violations = [
        f"episode {e.index} (seed {e.seed}): {v}"
        for e in campaign.failures
        for v in e.violations
    ]
    return AuditScenario(
        name=f"fuzz/{episodes}-episodes",
        violations=violations,
        detail=f"{len(campaign.episodes)} episodes",
    )


# ----------------------------------------------------------------------
# Scenario family 5: generated scenarios (constrained-random stimulus)
# ----------------------------------------------------------------------
def _generated_scenarios(seed: int, count: int = 8) -> AuditScenario:
    from repro.scenarios import generate_specs, run_scenarios

    specs = generate_specs(seed=seed, count=count)
    results = run_scenarios(specs, audit=True)
    violations = [
        f"scenario {r['index']} ({r['desc']}, seed {r['seed']}): {v}"
        for r in results
        for v in (
            r["violations"]
            if r["outcome"] == "ok"
            else r["violations"] + [r["outcome"]]
        )
    ]
    archs = ",".join(sorted({s.arch for s in specs}))
    return AuditScenario(
        name=f"scenarios/{count}-generated",
        violations=violations,
        detail=f"{len(results)} scenarios across {archs}",
    )


# ----------------------------------------------------------------------
def run_audit(
    seed: int = 0,
    episodes: int = 500,
    progress: Optional[Callable[[AuditScenario], None]] = None,
) -> AuditRun:
    """Run the full audited matrix; ``episodes=0`` skips the fuzz leg."""
    run = AuditRun(seed=seed)

    def add(scenario: AuditScenario) -> None:
        run.scenarios.append(scenario)
        if progress is not None:
            progress(scenario)

    for scenario in _run_migration_matrix(seed):
        add(scenario)
    for scenario in _cluster_scenarios(seed):
        add(scenario)
    add(_traced_scenario(seed))
    add(_generated_scenarios(seed))
    if episodes > 0:
        add(_fuzz_scenario(seed, episodes))
    return run


def render_audit(run: AuditRun, verbose: bool = False) -> str:
    lines = [f"runtime invariant audit (seed {run.seed})"]
    width = max(len(s.name) for s in run.scenarios) + 2
    for scenario in run.scenarios:
        status = "ok" if scenario.ok else f"{len(scenario.violations)} VIOLATION(S)"
        detail = f"  [{scenario.detail}]" if scenario.detail and verbose else ""
        lines.append(f"  {scenario.name:<{width}} {status}{detail}")
        if not scenario.ok:
            for violation in scenario.violations:
                lines.append(f"      - {violation}")
    total = sum(len(s.violations) for s in run.scenarios)
    lines.append(
        f"{len(run.scenarios)} scenarios, {total} violation(s): "
        + ("GREEN" if run.ok else "RED")
    )
    return "\n".join(lines)
