"""The runtime invariant auditor.

One :class:`Auditor` watches any number of subjects — machines, stacks,
clusters — and accumulates :class:`AuditViolation` records from two
sources:

* **event hooks** fired by instrumented code (``LiveMigration`` start /
  drain / copy / end, orchestrator attempt end).  These run *during* the
  simulation but never touch simulated state, so an audited run computes
  the same bytes as an un-audited one;
* **finish checks** run over every attached subject by :meth:`finish`
  (lifecycle leaks, fabric conservation, span reconciliation).

Attachment follows the :class:`~repro.faults.FaultInjector` idiom: the
auditor installs itself as ``machine.audit`` (and ``cluster.audit``),
and instrumented sites consult it through ``getattr(..., None)`` — zero
cost when auditing is off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.audit.checks import (
    fabric_conservation_violations,
    lifecycle_violations,
    orphaned_process_violations,
    span_reconciliation_violations,
)

__all__ = ["Auditor", "AuditReport", "AuditViolation"]


@dataclass(frozen=True)
class AuditViolation:
    """One failed invariant."""

    #: Which check tripped ("migration-lifecycle", "dirty-conservation",
    #: "fabric-conservation", "span-reconcile", "orphaned-process", ...).
    check: str
    #: What it tripped on (a VM, host, or subject name).
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


@dataclass
class AuditReport:
    """Everything one audited run produced."""

    violations: List[AuditViolation] = field(default_factory=list)
    #: Event/check tallies ("migrations", "pages_drained", ...).
    observed: Counter = field(default_factory=Counter)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self, verbose: bool = False) -> str:
        lines = [
            f"audit: {self.checks_run} checks, "
            f"{self.observed.get('migrations', 0)} migrations observed, "
            f"{len(self.violations)} violation(s)"
        ]
        if verbose and self.observed:
            for name, n in sorted(self.observed.items()):
                lines.append(f"  observed {name}: {n}")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        if self.ok:
            lines.append("  all audited invariants green")
        return "\n".join(lines)


class _MigrationAudit:
    """Per-migration bookkeeping between start and end hooks."""

    __slots__ = ("vm", "cpu_log", "device_logs", "backends", "outstanding")

    def __init__(self, vm, cpu_log, device_logs, backends) -> None:
        self.vm = vm
        self.cpu_log = cpu_log
        self.device_logs = list(device_logs)
        self.backends = list(backends)
        #: Pages drained from a dirty log but not yet re-copied; on a
        #: successful migration this must be empty at the end — a page
        #: drained for the convergence check and then forgotten would be
        #: silently absent from the destination.
        self.outstanding: Set[int] = set()


class Auditor:
    """Registers and evaluates conservation/lifecycle invariants."""

    def __init__(self, name: str = "audit") -> None:
        self.name = name
        self.violations: List[AuditViolation] = []
        self.observed: Counter = Counter()
        self.checks_run = 0
        #: Open migrations, keyed by id(vm) (a VM may migrate repeatedly
        #: but never concurrently with itself).
        self._open: Dict[int, _MigrationAudit] = {}
        #: Subjects for finish-time checks: ("stack"|"cluster", obj).
        self._subjects: List = []
        #: Span collectors to reconcile against their stack's metrics.
        self._collectors: List = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, subject) -> "Auditor":
        """Attach to a machine, stack, or cluster (duck-typed)."""
        if hasattr(subject, "hosts") and hasattr(subject, "fabric"):
            return self.attach_cluster(subject)
        if hasattr(subject, "machine") and hasattr(subject, "vms"):
            return self.attach_stack(subject)
        return self.attach_machine(subject)

    def attach_machine(self, machine) -> "Auditor":
        machine.audit = self
        return self

    def attach_stack(self, stack, trace: bool = False) -> "Auditor":
        """Audit one stack; ``trace=True`` additionally enables span
        tracing and reconciles span-attributed cycles against Metrics at
        :meth:`finish` (tracing has a runtime cost, so it stays opt-in
        even inside an audit)."""
        self.attach_machine(stack.machine)
        self._subjects.append(("stack", stack))
        if trace:
            collector = stack.machine.enable_span_tracing()
            self._collectors.append((collector, stack.metrics))
        return self

    def attach_cluster(self, cluster) -> "Auditor":
        cluster.audit = self
        for host in cluster.hosts:
            self.attach_machine(host.machine)
            self._subjects.append(("stack", host.stack))
        self._subjects.append(("cluster", cluster))
        return self

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _violate(self, check: str, subject: str, message: str) -> None:
        self.violations.append(AuditViolation(check, subject, message))

    # ------------------------------------------------------------------
    # Migration lifecycle hooks (called by LiveMigration)
    # ------------------------------------------------------------------
    def on_migration_start(self, vm, cpu_log, device_logs, backends) -> None:
        self.observed["migrations"] += 1
        attached = getattr(vm.memory, "_dirty_logs", set())
        # The fresh cpu_log is already attached when this hook fires; any
        # *other* attached log is debris from an earlier attempt that
        # never tore down — the stacked-dirty-log leak.
        stale = [log for log in attached if log is not cpu_log]
        if stale:
            names = ", ".join(sorted(log.name for log in stale))
            self._violate(
                "migration-lifecycle",
                vm.name,
                f"migration started with {len(stale)} stale dirty log(s) "
                f"still attached ({names}) — a previous attempt leaked",
            )
        if id(vm) in self._open:
            self._violate(
                "migration-lifecycle",
                vm.name,
                "migration started while a previous one never reported its end",
            )
        self._open[id(vm)] = _MigrationAudit(vm, cpu_log, device_logs, backends)

    def on_pages_drained(self, vm, pages: Set[int]) -> None:
        state = self._open.get(id(vm))
        if state is None:
            return
        self.observed["pages_drained"] += len(pages)
        state.outstanding |= pages

    def on_pages_copied(self, vm, pages: Set[int]) -> None:
        state = self._open.get(id(vm))
        if state is None:
            return
        self.observed["pages_copied"] += len(pages)
        state.outstanding -= pages

    def on_migration_end(
        self, vm, outcome: str, cpu_log, device_logs, backends
    ) -> None:
        self.observed[f"migration_{outcome}"] += 1
        self.checks_run += 1
        state = self._open.pop(id(vm), None)
        attached = getattr(vm.memory, "_dirty_logs", set())
        if cpu_log in attached:
            self._violate(
                "migration-lifecycle",
                vm.name,
                f"CPU dirty log {cpu_log.name!r} still attached after a "
                f"migration ended ({outcome})",
            )
        for device, backend in backends:
            if getattr(backend, "dirty_log", None) is not None:
                self._violate(
                    "migration-lifecycle",
                    vm.name,
                    f"device {device.name} dirty logging still enabled "
                    f"after a migration ended ({outcome})",
                )
            if getattr(backend, "paused", False):
                self._violate(
                    "migration-lifecycle",
                    vm.name,
                    f"backend for {device.name} left paused after a "
                    f"migration ended ({outcome})",
                )
        # Dirty-page conservation only binds a *successful* migration:
        # an abort legitimately abandons drained-but-uncopied pages (the
        # VM stays on the source, nothing was lost).
        if outcome == "ok" and state is not None and state.outstanding:
            sample = sorted(state.outstanding)[:8]
            self._violate(
                "dirty-conservation",
                vm.name,
                f"{len(state.outstanding)} drained page(s) were neither "
                f"re-copied nor carried into stop-and-copy "
                f"(e.g. pfns {sample})",
            )

    # ------------------------------------------------------------------
    # Orchestrator hooks
    # ------------------------------------------------------------------
    def on_attempt_end(self, tenant_name: str, processes) -> None:
        """A whole-migration attempt finished (any outcome): none of its
        simulation processes may remain runnable on the shared clock."""
        self.observed["attempts"] += 1
        self.checks_run += 1
        for message in orphaned_process_violations(processes):
            self._violate("orphaned-process", tenant_name, message)

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def finish(self) -> AuditReport:
        """Run finish-time checks over every attached subject and return
        the report.  Idempotent from the subjects' point of view: checks
        only read state."""
        for state in self._open.values():
            self._violate(
                "migration-lifecycle",
                state.vm.name,
                "migration still open at audit finish (never reported end)",
            )
        for kind, subject in self._subjects:
            self.checks_run += 1
            if kind == "stack":
                for message in lifecycle_violations(subject):
                    self._violate(
                        "lifecycle", getattr(subject.machine, "name", "stack"),
                        message,
                    )
            elif kind == "cluster":
                for message in fabric_conservation_violations(subject.fabric):
                    self._violate("fabric-conservation", subject.fabric.name,
                                  message)
        for collector, metrics in self._collectors:
            self.checks_run += 1
            for message in span_reconciliation_violations(collector, metrics):
                self._violate("span-reconcile", "spans", message)
        # Surface fast-forward activity in the report (macro-skipped
        # epochs charge Metrics without opening spans — accepted by the
        # reconciliation check, but never silently): aggregate per
        # simulator, not per subject, since stacks can share a clock.
        observed = Counter(self.observed)
        seen = set()
        for kind, subject in self._subjects:
            sim = subject.machine.sim if kind == "stack" else subject.sim
            if id(sim) in seen:
                continue
            seen.add(id(sim))
            ff = getattr(sim, "ff", None)
            if ff is not None and (ff.epochs_skipped or ff.macro_events):
                observed["ff_epochs_skipped"] += ff.epochs_skipped
                observed["ff_macro_events"] += ff.macro_events
        return AuditReport(
            violations=list(self.violations),
            observed=observed,
            checks_run=self.checks_run,
        )
