"""Pure invariant checks over finished (or settled) runs.

Every function here only *reads* state and returns a list of violation
strings (empty = green), so the same checks serve three callers:

* the :class:`~repro.audit.auditor.Auditor`'s finish pass,
* the trap-chain fuzzer's per-episode invariants
  (:func:`repro.faults.fuzz.check_invariants` folds
  :func:`lifecycle_violations` in),
* ad-hoc test assertions.

This module must stay import-light: :mod:`repro.faults.fuzz` imports it,
so importing anything from :mod:`repro.faults` here would cycle.  Fault
classes are referenced by their literal string names instead.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "lifecycle_violations",
    "fabric_conservation_violations",
    "span_reconciliation_violations",
    "orphaned_process_violations",
]

#: Fault classes that legitimately break fabric byte equalities (see
#: :func:`fabric_conservation_violations`).  Literal strings — importing
#: ``repro.faults.plan`` here would create an import cycle through the
#: fuzzer.
_FABRIC_DEGRADE = "fabric_degrade"
_FABRIC_LOSSY = ("fabric_partition", "fabric_host_loss")

#: Tolerance for float cycle accumulation in span reconciliation.
_CYCLE_EPS = 1e-6


def lifecycle_violations(stack) -> List[str]:
    """Resource-lifecycle audit over one stack: after any quiesced run,
    no VM may still have a dirty log attached, and no backend may be
    left paused or still dirty-logging.  All three are migration-held
    resources; finding one outside a live migration means an abort path
    leaked it."""
    out: List[str] = []
    for vm in getattr(stack, "vms", []):
        logs = getattr(vm.memory, "_dirty_logs", ())
        if logs:
            names = ", ".join(sorted(log.name for log in logs))
            out.append(
                f"lifecycle: {vm.name}: {len(logs)} dirty log(s) still "
                f"attached ({names})"
            )
    for hv in getattr(stack, "hvs", []):
        for device, backend in getattr(hv, "backends", {}).items():
            if getattr(backend, "paused", False):
                out.append(
                    f"lifecycle: backend for {device.name} left paused"
                )
            if getattr(backend, "dirty_log", None) is not None:
                out.append(
                    f"lifecycle: {device.name} DMA dirty logging still enabled"
                )
    return out


def fabric_conservation_violations(fabric) -> List[str]:
    """Byte/frame conservation over one cluster fabric.

    * frames: every transmitted frame is received or counted
      undeliverable (``tx == rx + undeliverable`` once the clock has
      drained; ``tx >= rx + undeliverable`` while frames are in flight);
    * wire bytes: every frame serializes once on the source uplink
      ("out") and once on the destination downlink ("in"), so the two
      totals match when drained;
    * metering: the ``cross_host`` table counts delivered payload bytes,
      which can never exceed what the downlinks carried — and matches
      exactly when nothing was undeliverable and no ``fabric_degrade``
      window inflated on-wire bytes.
    """
    out: List[str] = []
    ports = list(fabric.ports.values())
    tx = sum(p.frames["tx"] for p in ports)
    rx = sum(p.frames["rx"] for p in ports)
    undeliverable = fabric.undeliverable
    drained = fabric.sim.pending_events == 0
    if drained:
        if tx != rx + undeliverable:
            out.append(
                f"fabric frames: {tx} tx != {rx} rx + "
                f"{undeliverable} undeliverable"
            )
    elif tx < rx + undeliverable:
        out.append(
            f"fabric frames: {tx} tx < {rx} rx + "
            f"{undeliverable} undeliverable (counters ran backwards)"
        )
    out_bytes = sum(p.wire.bytes_carried["out"] for p in ports)
    in_bytes = sum(p.wire.bytes_carried["in"] for p in ports)
    if drained and out_bytes != in_bytes:
        out.append(
            f"fabric bytes: uplinks carried {out_bytes} != "
            f"downlinks carried {in_bytes}"
        )
    metered = fabric.metrics.cross_host_bytes()
    if metered > in_bytes:
        out.append(
            f"fabric metering: cross_host table claims {metered} bytes "
            f"but downlinks carried only {in_bytes}"
        )
    faults = fabric.metrics.faults
    lossless = (
        drained
        and undeliverable == 0
        and faults.get(_FABRIC_DEGRADE, 0) == 0
        and all(faults.get(kind, 0) == 0 for kind in _FABRIC_LOSSY)
    )
    if lossless and metered != in_bytes:
        out.append(
            f"fabric metering: clean fabric, but cross_host {metered} "
            f"bytes != {in_bytes} bytes carried"
        )
    return out


def span_reconciliation_violations(collector, metrics) -> List[str]:
    """Cycle conservation per exit chain: span-attributed cycles must
    never exceed the flat Metrics charge for the same category (spans
    subdivide the Metrics totals; handler work outside any dispatch
    frame legitimately leaves a non-negative remainder), and every
    opened span must close by the time the clock drains.

    Fast-forward macro-events are accepted attribution: a skipped epoch
    charges Metrics without opening spans (span tracing vetoes skipping
    *while attached*, but epochs skipped before attach or after detach
    are legitimate), so the remainder check stays one-sided — only
    spans exceeding Metrics is a violation."""
    out: List[str] = []
    for category, span_cy, metric_cy, rest in collector.reconcile(metrics):
        if rest < -_CYCLE_EPS * max(1.0, metric_cy):
            out.append(
                f"span reconcile: {category}: spans attribute "
                f"{span_cy:,.0f} cycles > Metrics charge {metric_cy:,.0f}"
            )
    if collector.sim.pending_events == 0:
        open_spans = collector.spans_opened - collector.spans_closed
        if open_spans:
            out.append(
                f"span reconcile: {open_spans} span(s) still open after "
                f"the clock drained"
            )
    return out


def orphaned_process_violations(processes) -> List[str]:
    """No simulation process belonging to a finished unit of work may
    remain runnable: it would keep consuming the shared clock on every
    later ``sim.run``.  A process is *retired* if it completed, was
    cancelled, or its generator frame is gone (it raised — the engine
    never reschedules it)."""
    out: List[str] = []
    for proc in processes:
        retired = (
            proc.done
            or proc.cancelled
            or getattr(proc.gen, "gi_frame", None) is None
        )
        if not retired:
            out.append(f"process {proc.name!r} still runnable after its "
                       f"work unit ended")
    return out
