"""Command-line interface: reproduce any of the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro table3
    python -m repro figure 7
    python -m repro figure 8 --apps memcached netperf_rr
    python -m repro migration
    python -m repro micro ProgramTimer --levels 2 --dvh full
    python -m repro trace ProgramTimer --levels 3 --chains
    python -m repro app memcached --levels 2 --io vp --dvh full --report
    python -m repro faults fuzz --episodes 500 --seed 1
    python -m repro faults plan --levels 2 --io vp --dvh full
    python -m repro audit --episodes 500
    python -m repro cluster migrate --io vp --audit
    python -m repro study --json

Every subcommand uniformly accepts ``--seed``, ``--no-fast-forward``,
``--audit``, ``--jobs``, and ``--json`` (``--seed`` and
``--no-fast-forward`` also work before the subcommand name): the same
seed reproduces the same run bit for bit, with or without fast-forward
and at any jobs count.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.features import DvhFeatures
from repro.faults.plan import FaultClass
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import app_names, run_app
from repro.workloads.microbench import MICROBENCHMARKS, run_microbenchmark

__all__ = ["main", "build_parser"]

DVH_PRESETS = {
    "none": DvhFeatures.none,
    "vp": DvhFeatures.vp_only,
    "full": DvhFeatures.full,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "DVH (ASPLOS 2020) reproduction: regenerate the paper's tables "
            "and figures, or run individual workloads on any configuration."
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="global simulation seed (same seed, same run, bit for bit)",
    )
    parser.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="disable steady-state epoch skipping and micro-step every "
        "event (simulated results are byte-identical either way; this "
        "only trades wall time for an exhaustive event trace)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common_args(p):
        """The uniform flag set every subcommand accepts: --seed,
        --no-fast-forward, --audit, --jobs, --json.  SUPPRESS defaults
        keep a pre-subcommand `--seed N` / `--no-fast-forward` from
        being clobbered when the flag follows the subcommand name.
        Subcommands without parallel cells, auditing, or a JSON shape
        simply ignore the unused flags."""
        p.add_argument(
            "--seed", type=int, default=argparse.SUPPRESS, help="simulation seed"
        )
        p.add_argument(
            "--no-fast-forward",
            action="store_true",
            default=argparse.SUPPRESS,
            help="micro-step every event (no epoch skipping)",
        )
        p.add_argument(
            "--audit",
            action="store_true",
            help="arm the runtime invariant auditor (exit 1 on violations)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent cells (0 = one per CPU)",
        )
        p.add_argument(
            "--json", action="store_true", help="print machine-readable JSON"
        )

    t3 = sub.add_parser("table3", help="Table 3: microbenchmark cycles")
    add_common_args(t3)

    fig = sub.add_parser("figure", help="Figures 7/8/9/10: application overheads")
    fig.add_argument("number", choices=["7", "8", "9", "10"])
    fig.add_argument("--apps", nargs="*", choices=app_names(), default=None)
    fig.add_argument("--scale", type=float, default=None, help="txn-count scale")
    fig.add_argument(
        "--chart", action="store_true", help="render as an ASCII bar chart"
    )
    add_common_args(fig)

    mig = sub.add_parser("migration", help="the Section 4 migration experiment")
    add_common_args(mig)

    def add_stack_args(p):
        p.add_argument("--levels", type=int, default=2, choices=[0, 1, 2, 3, 4, 5])
        p.add_argument(
            "--io", default=None, choices=["native", "virtio", "passthrough", "vp"]
        )
        p.add_argument("--dvh", default="none", choices=sorted(DVH_PRESETS))
        p.add_argument("--guest-hv", default="kvm", choices=["kvm", "xen", "hs"])
        p.add_argument(
            "--arch",
            default="x86",
            choices=["x86", "arm", "riscv"],
            help="platform cost profile (riscv implies the hs guest "
            "hypervisor with hedeleg/hideleg trap delegation)",
        )

    def add_slo_arg(p):
        p.add_argument(
            "--slo",
            action="store_true",
            help="capture per-request latency histograms (zero-cost when "
            "off) and print the percentile table",
        )

    micro = sub.add_parser("micro", help="one Table 1 microbenchmark")
    micro.add_argument("name", choices=sorted(MICROBENCHMARKS))
    micro.add_argument("--iterations", type=int, default=30)
    add_stack_args(micro)
    add_slo_arg(micro)
    add_common_args(micro)

    trace = sub.add_parser(
        "trace",
        help="span-level exit-chain tracing: where every cycle of the "
        "trap path goes, per chain",
    )
    trace.add_argument(
        "name",
        nargs="?",
        default="ProgramTimer",
        choices=sorted(MICROBENCHMARKS),
        help="microbenchmark to trace (default: ProgramTimer)",
    )
    trace.add_argument("--iterations", type=int, default=3)
    trace.add_argument(
        "--chains",
        type=int,
        nargs="?",
        const=4,
        default=None,
        metavar="N",
        help="render the span trees of the last N exit chains (default 4)",
    )
    trace.add_argument(
        "--sites",
        type=int,
        default=12,
        help="show the top N (level, reason, handler) sites by cycles",
    )
    add_stack_args(trace)
    add_common_args(trace)

    analyze = sub.add_parser(
        "analyze", help="exit breakdown: why a workload is slow per config"
    )
    analyze.add_argument("name", choices=app_names())
    analyze.add_argument("--scale", type=float, default=0.25)
    add_common_args(analyze)

    app = sub.add_parser("app", help="one Table 2 application benchmark")
    app.add_argument("name", choices=app_names())
    app.add_argument("--scale", type=float, default=0.4)
    app.add_argument(
        "--report", action="store_true", help="print the exit/cycle report"
    )
    app.add_argument(
        "--arrival",
        default="closed",
        choices=["closed", "poisson"],
        help="client arrival process for request/response apps: closed "
        "loop (default) or open-loop Poisson at --offered tps",
    )
    app.add_argument(
        "--offered",
        type=float,
        default=0.0,
        metavar="TPS",
        help="offered transactions/second for --arrival poisson",
    )
    add_stack_args(app)
    add_slo_arg(app)
    add_common_args(app)

    faults = sub.add_parser(
        "faults", help="fault injection: run a plan or a fuzz campaign"
    )
    fsub = faults.add_subparsers(dest="mode", required=True)

    fuzz = fsub.add_parser(
        "fuzz", help="trap-chain fuzz campaign with per-episode invariants"
    )
    fuzz.add_argument("--episodes", type=int, default=500)
    fuzz.add_argument(
        "--levels", type=int, nargs="*", default=[0, 1, 2, 3], choices=[0, 1, 2, 3]
    )
    fuzz.add_argument("--intensity", type=float, default=0.08)
    fuzz.add_argument("--ops", type=int, default=20, help="ops per worker vCPU")
    fuzz.add_argument(
        "--replay-every",
        type=int,
        default=10,
        help="replay every Nth episode and require a byte-identical digest",
    )
    fuzz.add_argument(
        "--verbose", action="store_true", help="print failing episodes' plans"
    )
    add_common_args(fuzz)

    plan = fsub.add_parser(
        "plan", help="one seed-derived fault plan against one stack"
    )
    plan.add_argument(
        "--classes",
        nargs="*",
        choices=sorted(FaultClass.ALL),
        default=None,
        help="fault classes to draw from (default: all non-migration classes)",
    )
    plan.add_argument("--intensity", type=float, default=0.05)
    plan.add_argument("--ops", type=int, default=30, help="ops per worker vCPU")
    plan.add_argument(
        "--report", action="store_true", help="print the full exit/cycle report"
    )
    add_stack_args(plan)
    add_common_args(plan)

    cluster = sub.add_parser(
        "cluster",
        help="multi-host datacenter: placement, cross-host DVH migration",
    )
    csub = cluster.add_subparsers(dest="mode", required=True)

    def add_cluster_args(p, hosts_default=4):
        p.add_argument("--hosts", type=int, default=hosts_default)
        p.add_argument(
            "--policy",
            default="bin-pack",
            choices=["bin-pack", "spread", "load-balance"],
        )
        p.add_argument("--guest-hv", default="kvm", choices=["kvm", "xen", "hs"])
        p.add_argument(
            "--arch", default="x86", choices=["x86", "arm", "riscv"],
            help="platform cost profile for every host in the cluster",
        )
        p.add_argument(
            "--faults",
            nargs="*",
            choices=sorted(FaultClass.FABRIC),
            default=None,
            help="fabric fault classes to draw a seed-derived plan from",
        )
        add_common_args(p)

    cdemo = csub.add_parser(
        "demo", help="boot a cluster, place a fleet, evacuate a host"
    )
    cdemo.add_argument("--tenants", type=int, default=6)
    add_slo_arg(cdemo)
    add_cluster_args(cdemo)

    cmig = csub.add_parser(
        "migrate", help="one cross-host live migration (vp migrates, "
        "passthrough refuses)"
    )
    cmig.add_argument(
        "--io", default="vp", choices=["virtio", "vp", "passthrough"]
    )
    cmig.add_argument(
        "--downtime-limit-ms",
        type=float,
        default=500.0,
        help="abort if projected downtime exceeds this",
    )
    add_cluster_args(cmig, hosts_default=2)

    csweep = csub.add_parser(
        "sweep", help="sweep placement policies across cluster sizes"
    )
    csweep.add_argument("--tenants", type=int, default=6)
    add_common_args(csweep)

    dc = sub.add_parser(
        "dc",
        help="spine-leaf datacenter: declarative specs, live control "
        "plane, rolling upgrade waves (repro.dc)",
    )
    dsub = dc.add_subparsers(dest="mode", required=True)

    def add_dc_args(p, with_spec=True):
        if with_spec:
            p.add_argument(
                "--spec",
                default="small",
                help="built-in spec name (small, fleet, slo) or a path to "
                "a JSON / YAML-subset spec file",
            )
        p.add_argument(
            "--no-quiescent",
            action="store_true",
            help="boot every host's stack eagerly instead of on first "
            "touch (byte-identical trace; only wall time changes)",
        )
        p.add_argument(
            "--slo",
            action="store_true",
            help="force-enable latency telemetry and the SLO gate even "
            "when the spec's slo: block is absent or disabled",
        )
        add_common_args(p)

    ddemo = dsub.add_parser(
        "demo",
        help="run the built-in small fleet: admissions, rebalancing, "
        "a full rolling-upgrade wave, pinned-host report",
    )
    add_dc_args(ddemo, with_spec=False)

    drun = dsub.add_parser("run", help="run a datacenter spec to completion")
    add_dc_args(drun)

    dsweep = dsub.add_parser(
        "sweep", help="run one spec across a range of seeds"
    )
    dsweep.add_argument(
        "--seeds", type=int, default=4, help="number of seeds (0..N-1)"
    )
    add_dc_args(dsweep)

    dval = dsub.add_parser(
        "validate", help="parse and validate a spec file, print its shape"
    )
    dval.add_argument("--spec", default="small", help="spec name or path")
    add_common_args(dval)

    slo = sub.add_parser(
        "slo",
        help="the tail-latency headline study: noisy neighbours, "
        "SLO-gated live migration, fabric degradation, and the "
        "virtio/vp/passthrough percentile table (repro.dc 'slo' spec)",
    )
    slo.add_argument(
        "--spec",
        default="slo",
        help="spec name or path (default: the built-in 'slo' study)",
    )
    slo.add_argument(
        "--trace", action="store_true", help="print the full event trace"
    )
    add_common_args(slo)

    study = sub.add_parser(
        "study",
        help="head-to-head: baseline vs DVH vs OoH vs DVH+OoH across "
        "micro-ops, apps, and live migration (repro.study)",
    )
    study.add_argument(
        "--spec",
        default=None,
        help="path to a JSON study-matrix spec (default: the built-in "
        "full matrix; see examples/study_matrix.json)",
    )
    add_common_args(study)

    audit = sub.add_parser(
        "audit",
        help="runtime invariant audit: drive the migration/cluster fault "
        "matrix and a fuzz campaign with every auditor check armed",
    )
    audit.add_argument(
        "--episodes",
        type=int,
        default=500,
        help="fuzz-campaign episodes (0 skips the fuzz leg)",
    )
    audit.add_argument(
        "--verbose", action="store_true", help="print per-scenario detail"
    )
    add_common_args(audit)

    scenarios = sub.add_parser(
        "scenarios",
        help="constrained-random scenarios: generate, run, or shrink "
        "(one seeded generator behind the fuzzer, audit and sweeps)",
    )
    scsub = scenarios.add_subparsers(dest="mode", required=True)

    def add_scenario_args(p):
        p.add_argument(
            "--count", type=int, default=10, help="scenarios to generate"
        )
        p.add_argument(
            "--arch",
            nargs="*",
            choices=["x86", "arm", "riscv"],
            default=None,
            help="restrict the architecture pool (default: all three)",
        )
        add_common_args(p)

    gen = scsub.add_parser(
        "gen",
        help="print canonical scenario specs, one JSON line each "
        "(same seed => byte-identical bytes)",
    )
    add_scenario_args(gen)

    run_p = scsub.add_parser(
        "run", help="generate AND run scenarios, checking invariants"
    )
    add_scenario_args(run_p)

    shrink = scsub.add_parser(
        "shrink", help="greedily minimize one failing scenario"
    )
    shrink.add_argument(
        "--index", type=int, default=0, help="scenario index within the seed"
    )
    add_scenario_args(shrink)

    return parser


def _stack_config(args) -> StackConfig:
    io = args.io
    if io is None:
        if args.levels == 0:
            io = "native"
        elif DVH_PRESETS[args.dvh]().virtual_passthrough and args.levels >= 2:
            io = "vp"
        else:
            io = "virtio"
    return StackConfig(
        levels=args.levels,
        io_model=io,
        dvh=DVH_PRESETS[args.dvh](),
        guest_hv=args.guest_hv,
        seed=args.seed,
        arch=getattr(args, "arch", "x86"),
    )


def _make_auditor(args):
    """An armed :class:`repro.audit.Auditor` when ``--audit`` was given,
    else None (the un-audited run stays byte-identical)."""
    if not getattr(args, "audit", False):
        return None
    from repro.audit import Auditor

    return Auditor()


def _finish_audit(auditor) -> int:
    """Render an armed auditor's report; non-zero on violations."""
    if auditor is None:
        return 0
    report = auditor.finish()
    print()
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if getattr(args, "no_fast_forward", False):
        # Threaded like --seed: the env var is read at Simulator
        # construction (and inherited by --jobs worker subprocesses),
        # so every stack built below micro-steps.
        import os

        os.environ["REPRO_FAST_FORWARD"] = "0"

    if args.command == "table3":
        from repro.bench import format_table3, run_table3

        print(format_table3(run_table3(jobs=args.jobs, seed=args.seed)))
        return 0

    if args.command == "figure":
        from repro.bench import format_figure, run_figure

        scales = None
        if args.scale is not None:
            scales = {lvl: args.scale for lvl in range(6)}
        result = run_figure(
            args.number,
            apps=args.apps,
            scales=scales,
            jobs=args.jobs,
            seed=args.seed,
        )
        if args.chart:
            from repro.bench.plot import ascii_figure

            print(ascii_figure(result))
        else:
            print(format_figure(result))
        return 0

    if args.command == "migration":
        from repro.bench import format_migration, run_migration_experiment

        auditor = _make_auditor(args)
        print(format_migration(run_migration_experiment(seed=args.seed, audit=auditor)))
        return _finish_audit(auditor)

    if args.command == "micro":
        stack = build_stack(_stack_config(args))
        auditor = _make_auditor(args)
        if auditor is not None:
            auditor.attach_stack(stack)
        if args.slo:
            stack.machine.enable_request_capture(series=args.name)
        cycles = run_microbenchmark(stack, args.name, args.iterations)
        print(
            f"{args.name} (levels={args.levels}, dvh={args.dvh}): "
            f"{cycles:,.0f} cycles/op"
        )
        if args.slo:
            from repro.metrics.report import latency_report

            print()
            print(latency_report(stack.metrics, stack.machine.freq_hz))
        return _finish_audit(auditor)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "analyze":
        from repro.bench.analysis import exit_breakdown, format_breakdown

        rows = exit_breakdown(args.name, scale=args.scale, seed=args.seed)
        print(format_breakdown(rows, app=args.name))
        return 0

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "cluster":
        return _run_cluster(args)

    if args.command == "dc":
        return _run_dc(args)

    if args.command == "slo":
        return _run_slo(args)

    if args.command == "study":
        return _run_study(args)

    if args.command == "scenarios":
        return _run_scenarios(args)

    if args.command == "audit":
        from repro.audit.runner import render_audit, run_audit

        run = run_audit(seed=args.seed, episodes=args.episodes)
        print(render_audit(run, verbose=args.verbose))
        return 0 if run.ok else 1

    if args.command == "app":
        stack = build_stack(_stack_config(args))
        auditor = _make_auditor(args)
        if auditor is not None:
            auditor.attach_stack(stack)
        if args.slo:
            stack.machine.enable_request_capture(series=args.name)
        try:
            result = run_app(
                stack,
                args.name,
                scale=args.scale,
                arrival=args.arrival,
                offered_tps=args.offered,
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 1
        arrival = f", arrival={args.arrival}" if args.arrival != "closed" else ""
        print(
            f"{args.name} (levels={args.levels}, io={stack.config.io_model}, "
            f"dvh={args.dvh}{arrival}): {result.value:,.1f} {result.unit} "
            f"over {result.txns} transactions in {result.elapsed_s * 1000:.2f} ms"
        )
        if args.slo and not args.report:
            from repro.metrics.report import latency_report

            print()
            print(latency_report(stack.metrics, stack.machine.freq_hz))
        if args.report:
            from repro.metrics.report import full_report

            print()
            print(full_report(stack.metrics, stack.machine.freq_hz, sim=stack.sim))
        return _finish_audit(auditor)

    return 2  # pragma: no cover - argparse enforces the choices


def _run_trace(args) -> int:
    """The ``trace`` subcommand: run a microbenchmark with span tracing
    on and show where the trap path's cycles went."""
    stack = build_stack(_stack_config(args))
    collector = stack.machine.enable_span_tracing()
    cycles = run_microbenchmark(stack, args.name, args.iterations)
    chains = len(collector.roots) + collector.chains_evicted
    print(
        f"{args.name} (levels={args.levels}, io={stack.config.io_model}, "
        f"dvh={args.dvh}, guest_hv={args.guest_hv}): {cycles:,.0f} cycles/op"
    )
    print(
        f"{collector.spans_closed} spans closed over {chains} exit chains "
        f"({collector.spans_opened - collector.spans_closed} still open at drain)"
    )

    print()
    print("cycle reconciliation (span-attributed vs Metrics):")
    print(f"  {'category':<14} {'spans':>14} {'metrics':>14} {'unattributed':>14}")
    for category, span_cy, metric_cy, rest in collector.reconcile(stack.metrics):
        print(
            f"  {category:<14} {span_cy:>14,.0f} {metric_cy:>14,.0f} {rest:>14,.0f}"
        )

    rows = collector.site_rows()
    if rows:
        print()
        print(f"top dispatch sites (of {len(rows)}):")
        for level, reason, handler, site_cycles in rows[: args.sites]:
            print(f"  L{level} {reason:<18} -> {handler:<10} {site_cycles:>14,.0f}")

    if args.chains:
        print()
        print(collector.render_chains(last=args.chains))
    return 0


def _run_faults(args) -> int:
    """The ``faults`` subcommand: fuzz campaigns and single plan runs."""
    if args.mode == "fuzz":
        from repro.faults import TrapChainFuzzer, render_campaign

        fuzzer = TrapChainFuzzer(
            seed=args.seed,
            episodes=args.episodes,
            levels=tuple(args.levels),
            ops_per_worker=args.ops,
            intensity=args.intensity,
            replay_every=args.replay_every,
            audit=args.audit,
        )
        campaign = fuzzer.run()
        print(render_campaign(campaign, verbose=args.verbose))
        return 0 if campaign.ok else 1

    # mode == "plan": one seed-derived plan against one configured stack.
    from repro.faults import (
        FaultPlan,
        build_faulted_stack,
        check_invariants,
        render_plan_run,
        run_fault_workload,
    )
    from repro.faults.fuzz import FUZZ_CLASSES

    config = _stack_config(args)
    classes = args.classes if args.classes else FUZZ_CLASSES
    plan = FaultPlan.random(args.seed, classes=classes, intensity=args.intensity)
    stack, injector = build_faulted_stack(config, plan, seed=args.seed)
    auditor = _make_auditor(args)
    if auditor is not None:
        auditor.attach_stack(stack)
    violations = []
    ops = {}
    try:
        ops = run_fault_workload(stack, ops_per_worker=args.ops, seed=args.seed)
    except RuntimeError as exc:
        violations.append(f"stranded: {exc}")
    violations.extend(check_invariants(stack, injector))
    if auditor is not None:
        violations.extend(str(v) for v in auditor.finish().violations)
    print(render_plan_run(stack, injector, ops=ops))
    if args.report:
        from repro.metrics.report import full_report

        print()
        print(full_report(stack.metrics, stack.machine.freq_hz, sim=stack.sim))
    if violations:
        print()
        print(f"INVARIANT VIOLATIONS ({len(violations)}):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    return 0


def _run_scenarios(args) -> int:
    """The ``scenarios`` subcommand: gen, run, shrink."""
    import json

    from repro.scenarios import generate_specs, run_scenarios, shrink_scenario

    arches = tuple(args.arch) if args.arch else ("x86", "arm", "riscv")
    specs = generate_specs(seed=args.seed, count=args.count, arches=arches)

    if args.mode == "gen":
        # Streams one spec per line; a downstream `head` closing the
        # pipe early is a normal way to consume it, not an error.
        try:
            for spec in specs:
                print(spec.to_json())
            sys.stdout.flush()
        except BrokenPipeError:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        return 0

    if args.mode == "run":
        jobs = args.jobs if args.jobs != 1 else None
        results = run_scenarios(specs, jobs=jobs, audit=args.audit)
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
        else:
            width = max(len(r["desc"]) for r in results) + 2
            for r in results:
                status = (
                    "ok"
                    if r["outcome"] == "ok" and not r["violations"]
                    else f"{r['outcome']} ({len(r['violations'])} violation(s))"
                )
                print(
                    f"  [{r['index']:>3}] {r['desc']:<{width}} {status}  "
                    f"digest={r['digest'][:12]}"
                )
        bad = [r for r in results if r["outcome"] != "ok" or r["violations"]]
        if bad and not args.json:
            for r in bad:
                for violation in r["violations"]:
                    print(f"      - [{r['index']}] {violation}")
        return 1 if bad else 0

    # mode == "shrink": minimize one failing scenario from this campaign.
    spec = specs[args.index]
    try:
        minimal, steps = shrink_scenario(spec)
    except ValueError as exc:
        print(f"scenario {args.index} ({spec.desc}): {exc}")
        return 0
    print(f"shrunk {spec.desc} in {len(steps)} step(s):")
    for step in steps:
        print(f"  - {step}")
    print(minimal.to_json())
    return 0


def _cluster_fault_plan(args):
    from repro.faults import FaultPlan

    if not getattr(args, "faults", None):
        return None
    return FaultPlan.random(args.seed, classes=args.faults, max_classes=2)


def _print_percentiles(table, freq_hz: Optional[int] = None) -> None:
    """Render a tenant percentile table (see
    repro.cluster.telemetry.percentile_table) sorted worst-p99 first."""
    if not table:
        print("tenant percentiles: (no latency samples)")
        return
    with_slo = any("objective_cycles" in row for row in table.values())
    header = (
        f"{'tenant':<8} {'io':<12} {'samples':>7} {'mean cy':>10} "
        f"{'p50 cy':>10} {'p99 cy':>10} {'p99.9 cy':>10}"
    )
    if with_slo:
        header += f" {'objective':>10} {'viol':>6}"
    if freq_hz:
        header += f" {'p99':>10}"
    print("tenant percentiles (worst p99 first):")
    print(header)
    rows = sorted(
        table.items(), key=lambda kv: (-kv[1]["p99_cycles"], kv[0])
    )
    for name, row in rows:
        line = (
            f"{name:<8} {row['io_model'] or '-':<12} {row['samples']:>7} "
            f"{row['mean_cycles']:>10,} {row['p50_cycles']:>10,} "
            f"{row['p99_cycles']:>10,} {row['p999_cycles']:>10,}"
        )
        if with_slo:
            obj = row.get("objective_cycles")
            line += (
                f" {obj:>10,} {row.get('violations', 0):>6}"
                if obj
                else f" {'-':>10} {'-':>6}"
            )
        if freq_hz:
            line += f" {row['p99_cycles'] / freq_hz * 1e6:>7.1f} us"
        print(line)


def _run_cluster(args) -> int:
    """The ``cluster`` subcommand: demo, single migration, policy sweep."""
    import json

    if args.mode == "sweep":
        from repro.cluster.sweep import run_sweep

        rows = run_sweep(seed=args.seed, num_tenants=args.tenants, jobs=args.jobs)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        print(
            f"{'policy':<14} {'hosts':>5} {'per-host':>12} {'max load':>9} "
            f"{'mig bytes':>12} {'downtime':>10}"
        )
        for row in rows:
            mig = row["migration"]
            downtime = f"{mig['downtime_ms']:.3f} ms" if mig else "-"
            print(
                f"{row['policy']:<14} {row['hosts']:>5} "
                f"{str(row['tenants_per_host']):>12} {row['max_load']:>9} "
                f"{row['fabric_migration_bytes']:>12,} {downtime:>10}"
            )
        return 0

    if args.mode == "demo":
        from repro.cluster.sweep import run_demo

        summary = run_demo(
            seed=args.seed,
            num_hosts=args.hosts,
            num_tenants=args.tenants,
            policy=args.policy,
            guest_hv=args.guest_hv,
            arch=args.arch,
            fault_plan=_cluster_fault_plan(args),
            audit=args.audit,
            slo=args.slo,
        )
        audit = summary.get("audit")
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 1 if audit and not audit["ok"] else 0
        print(
            f"cluster demo: {args.hosts} hosts, {args.tenants} tenants, "
            f"policy={args.policy}, seed={args.seed}"
        )
        for line in summary["trace"]:
            print(f"  {line}")
        fabric = summary["fabric"]
        print(
            f"fabric: {fabric['frames']} frames, "
            f"{fabric['migration_bytes']:,} migration bytes, "
            f"{fabric['net_bytes']:,} net bytes, "
            f"{fabric['undeliverable']} undeliverable"
        )
        moved = [m for m in summary["migrations"] if m["outcome"] == "ok"]
        stuck = [m for m in summary["migrations"] if m["outcome"] != "ok"]
        print(
            f"migrations: {len(moved)} ok, {len(stuck)} refused/failed "
            f"(digest {summary['digest'][:16]})"
        )
        if args.slo:
            print()
            _print_percentiles(summary.get("tenant_percentiles", {}))
        if audit is not None:
            print(
                f"audit: {audit['checks_run']} checks, "
                f"{len(audit['violations'])} violation(s)"
            )
            for violation in audit["violations"]:
                print(f"  VIOLATION {violation}")
            return 0 if audit["ok"] else 1
        return 0

    # mode == "migrate": one cross-host migration, asymmetry on display.
    from repro.cluster import Cluster, TenantSpec
    from repro.core.migration import MigrationError, MigrationNotSupported

    cluster = Cluster(
        num_hosts=max(2, args.hosts),
        seed=args.seed,
        policy=args.policy,
        guest_hv=args.guest_hv,
        arch=args.arch,
        fault_plan=_cluster_fault_plan(args),
    )
    auditor = cluster.enable_audit() if args.audit else None
    cluster.place(TenantSpec(name="tenant0", io_model=args.io, memory_gb=8))
    src = cluster.host_of("tenant0")
    dst = [h for h in cluster.hosts if h.name != src.name][0]
    try:
        record = cluster.migrate(
            "tenant0", dst.name, downtime_limit_s=args.downtime_limit_ms / 1e3
        )
    except MigrationNotSupported as exc:
        print(f"migration refused (hardware-coupled): {exc}")
        _finish_audit(auditor)
        return 1
    except MigrationError as exc:
        print(f"migration failed: {exc}")
        _finish_audit(auditor)
        return 1
    result = record.result
    if args.json:
        summary = cluster.summary()
        rc = 0
        if auditor is not None:
            report = auditor.finish()
            summary["audit"] = {
                "ok": report.ok,
                "checks_run": report.checks_run,
                "violations": [str(v) for v in report.violations],
            }
            rc = 0 if report.ok else 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        return rc
    print(
        f"migrated tenant0 ({args.io}) {src.name} -> {dst.name}: "
        f"downtime {result.downtime_s * 1e3:.3f} ms, "
        f"{result.rounds} pre-copy rounds, "
        f"{result.bytes_transferred:,} bytes over the fabric, "
        f"{result.retries} retries, {record.attempts} attempt(s)"
    )
    print(
        f"fabric migration bytes: "
        f"{cluster.fabric.metrics.cross_host_bytes('migration'):,}"
    )
    return _finish_audit(auditor)


def _run_dc(args) -> int:
    """The ``dc`` subcommand: spec-driven fleets under a control plane."""
    import json

    from repro.dc import load_spec, run_dc, run_sweep
    from repro.dc.spec import SpecError

    try:
        spec = load_spec(getattr(args, "spec", "small"))
    except (SpecError, FileNotFoundError) as exc:
        print(f"spec error: {exc}")
        return 1

    if args.mode == "validate":
        print(spec.describe())
        return 0

    if getattr(args, "slo", False) and not spec.slo.enabled:
        # Force-enable latency telemetry and the gate with the spec's
        # slo: block values (or SloSpec defaults when absent).  Same
        # deterministic path as a spec that says enabled: true.
        from dataclasses import replace as _replace

        spec = _replace(spec, slo=_replace(spec.slo, enabled=True))

    quiescent = not args.no_quiescent

    if args.mode == "sweep":
        rows = run_sweep(
            getattr(args, "spec", "small"),
            seeds=range(args.seeds),
            jobs=args.jobs,
            quiescent=quiescent,
        )
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        print(
            f"{'seed':>4} {'events':>7} {'admitted':>8} {'moves':>6} "
            f"{'pinned/wave':>14} {'digest':>18}"
        )
        for row in rows:
            print(
                f"{row['seed']:>4} {row['events']:>7} {row['admitted']:>8} "
                f"{row['rebalance_moves']:>6} "
                f"{str(row['pinned_per_wave']):>14} {row['digest'][:16]:>18}"
            )
        return 0

    # mode in ("demo", "run"): one fleet, full control-plane lifecycle.
    dc = run_dc(spec, seed=args.seed, quiescent=quiescent)
    summary = dc.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    topo = spec.topology
    print(
        f"dc {spec.name}: {topo.racks} racks x {topo.hosts_per_rack} hosts, "
        f"{topo.spines} spines, {topo.oversubscription:g}:1 oversub, "
        f"policy={spec.control.policy}, seed={args.seed}"
    )
    for line in dc.events:
        print(f"  {line}")
    control = summary.get("control")
    if control:
        print(
            f"control: {control['admitted']} admitted, "
            f"{len(control['rejected'])} rejected, "
            f"{control['rebalance_moves']} rebalance moves, "
            f"{control['upgraded_total']} hosts upgraded, "
            f"pinned per wave {control['pinned_per_wave']}"
        )
        slo = control.get("slo")
        if slo:
            print(
                f"slo gate: {slo['ticks']} ticks, {slo['samples']} samples, "
                f"{slo['breaches']} breaches, {slo['migrations']} migrations"
            )
    fabric = summary["fabric"]
    print(
        f"fabric: {fabric['frames']} frames, "
        f"{fabric['migration_bytes']:,} migration bytes, "
        f"{fabric['net_bytes']:,} net bytes, "
        f"{fabric.get('trunk_bytes', 0):,} trunk bytes"
    )
    print(
        f"hosts: {summary['hosts_booted']}/{summary['hosts_total']} booted "
        f"({summary['boots']} boots) "
        f"(digest {summary['digest'][:16]})"
    )
    if summary.get("tenant_percentiles"):
        print()
        _print_percentiles(summary["tenant_percentiles"], freq_hz=dc.sim.freq_hz)
    return 0


def _run_study(args) -> int:
    """The ``study`` subcommand: the 4-way head-to-head matrix."""
    import json

    from repro.study import StudySpec, render_study, run_study

    try:
        spec = StudySpec.from_file(args.spec) if args.spec else StudySpec()
    except (ValueError, OSError) as exc:
        print(f"spec error: {exc}")
        return 1
    result = run_study(spec, seed=args.seed, jobs=args.jobs)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        return 0
    print(render_study(result))
    return 0


def _run_slo(args) -> int:
    """The ``slo`` subcommand: the tail-latency headline study.

    Runs the built-in ``slo`` datacenter spec (or any spec given via
    ``--spec``, with telemetry force-enabled) and renders the story the
    per-run aggregates could not tell: per-tenant percentile tables,
    SLO-gate decisions (migrate / pinned / no-target), and the
    brownout/degradation windows in the event trace."""
    import json
    from collections import Counter
    from dataclasses import replace as _replace

    from repro.dc import load_spec, run_dc
    from repro.dc.spec import SpecError

    try:
        spec = load_spec(args.spec)
    except (SpecError, FileNotFoundError) as exc:
        print(f"spec error: {exc}")
        return 1
    if not spec.slo.enabled:
        spec = _replace(spec, slo=_replace(spec.slo, enabled=True))

    dc = run_dc(spec, seed=args.seed)
    summary = dc.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    cfg = spec.slo
    print(
        f"slo study: spec={spec.name} seed={args.seed} "
        f"sample={cfg.sample_ms:g}ms gate every {cfg.gate_interval_ms:g}ms "
        f"from {cfg.gate_start_ms:g}ms, default p99 objective "
        f"{cfg.objective_p99_ms:g}ms"
    )
    if args.trace:
        for line in dc.events:
            print(f"  {line}")
    control = summary["control"]
    slo = control["slo"]
    print(
        f"slo gate: {slo['ticks']} telemetry ticks, {slo['samples']} samples, "
        f"{slo['breaches']} breaches, {slo['migrations']} gate migrations"
    )
    actions = Counter(
        (r["io_model"], r["action"]) for r in slo["reports"]
    )
    for (io_model, action), n in sorted(actions.items()):
        print(f"  {io_model:<12} {action:<10} x{n}")
    print()
    _print_percentiles(summary["tenant_percentiles"], freq_hz=dc.sim.freq_hz)
    print()
    print(f"digest {summary['digest'][:16]} (byte-identical per seed)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
